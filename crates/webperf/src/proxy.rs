//! The local DNS proxy (the paper's instrumented AdGuard dnsproxy).
//!
//! Runs inside the browser host (the paper runs it on the same EC2
//! instance as Chromium), forwards every stub query to one upstream
//! resolver over the configured DoX transport, has **no cache** (the
//! methodology disables it), keeps resumption material across session
//! resets, and reproduces the connection-handling behaviour §3.2
//! documents:
//!
//! * DoUDP: one socket;
//! * DoTCP: a fresh connection per query (no resolver honours
//!   keepalive, so each query pays the full 2 RTT);
//! * DoT: one persistent connection — **but** when a query is already
//!   in flight and a new one arrives, the unpatched dnsproxy opens
//!   another full connection instead of reusing ([`DnsProxy::dot_bug`];
//!   the paper measured this hitting ~60% of page loads and upstreamed
//!   a fix, which `dot_bug = false` models);
//! * DoH / DoQ: one persistent multiplexed connection.

use doqlab_dnswire::{Message, Name, RData, Rcode, RecordType};
use doqlab_dox::{make_client, ClientConfig, DnsClientConn, DnsTransport, SessionState};
use doqlab_simnet::{Ipv4Addr, Packet, SimRng, SimTime, SocketAddr};
use std::collections::HashMap;

struct ProxyConn {
    conn: Box<dyn DnsClientConn>,
    port: u16,
    started: bool,
    inflight: usize,
}

/// The proxy component.
pub struct DnsProxy {
    client_ip: Ipv4Addr,
    upstream: SocketAddr,
    transport: DnsTransport,
    base_cfg: ClientConfig,
    /// Resumption material persisted across session resets — exactly
    /// what the paper's instrumentation stores between the cache-warming
    /// and measurement navigations.
    pub session: SessionState,
    /// Reproduce the dnsproxy DoT reconnect bug.
    pub dot_bug: bool,
    conns: Vec<ProxyConn>,
    next_qid: u16,
    next_port: u16,
    pending: HashMap<u16, String>,
    resolved: Vec<(String, Option<Ipv4Addr>)>,
    /// Number of upstream connections opened (bug observability).
    pub connections_opened: u32,
    pub queries_sent: u32,
}

impl DnsProxy {
    pub fn new(
        client_ip: Ipv4Addr,
        upstream: SocketAddr,
        transport: DnsTransport,
        base_cfg: ClientConfig,
        dot_bug: bool,
    ) -> Self {
        DnsProxy {
            client_ip,
            upstream,
            transport,
            session: base_cfg.session.clone(),
            base_cfg,
            dot_bug,
            conns: Vec::new(),
            next_qid: 1,
            next_port: 42_000,
            pending: HashMap::new(),
            resolved: Vec::new(),
            connections_opened: 0,
            queries_sent: 0,
        }
    }

    /// Drop live upstream sessions but keep tickets/tokens — the
    /// methodology's reset between warming and measurement.
    pub fn reset_sessions(&mut self) {
        self.conns.clear();
        self.pending.clear();
    }

    /// True if `port` belongs to one of the proxy's upstream sockets.
    pub fn owns_port(&self, port: u16) -> bool {
        self.conns.iter().any(|c| c.port == port)
    }

    fn pick_conn(&mut self) -> usize {
        let reusable = match self.transport {
            // Default: fresh connection per query (no resolver honours
            // keepalive). With RFC 9210 behaviour requested, reuse.
            DnsTransport::DoTcp if !self.base_cfg.request_tcp_keepalive => None,
            DnsTransport::DoT => {
                let candidate = self.conns.iter().position(|c| !c.conn.failed());
                match candidate {
                    Some(i) if self.dot_bug && self.conns[i].inflight > 0 => None,
                    other => other,
                }
            }
            _ => self.conns.iter().position(|c| !c.conn.failed()),
        };
        match reusable {
            Some(i) => i,
            None => {
                let port = self.next_port;
                self.next_port += 1;
                self.connections_opened += 1;
                let cfg = ClientConfig {
                    session: self.session.clone(),
                    ..self.base_cfg.clone()
                };
                let conn = make_client(
                    self.transport,
                    SocketAddr::new(self.client_ip, port),
                    self.upstream,
                    &cfg,
                );
                self.conns.push(ProxyConn {
                    conn,
                    port,
                    started: false,
                    inflight: 0,
                });
                self.conns.len() - 1
            }
        }
    }

    /// Forward a stub query for `domain` upstream. The result arrives
    /// via [`DnsProxy::take_resolved`].
    pub fn resolve(&mut self, now: SimTime, rng: &mut SimRng, domain: &str, out: &mut Vec<Packet>) {
        let qid = self.next_qid;
        self.next_qid = self.next_qid.wrapping_add(1).max(1);
        let name = Name::parse(domain).expect("valid domain");
        let mut query = Message::query(qid, name, RecordType::A);
        if self.transport == DnsTransport::DoTcp && self.base_cfg.request_tcp_keepalive {
            // Ask the resolver to hold the connection open (RFC 7828).
            query.additionals.clear();
            query.additionals.push(
                doqlab_dnswire::OptRecord {
                    options: vec![doqlab_dnswire::EdnsOption::TcpKeepalive(None)],
                    ..doqlab_dnswire::OptRecord::default()
                }
                .to_record(),
            );
        }
        self.pending.insert(qid, domain.to_string());
        self.queries_sent += 1;
        let i = self.pick_conn();
        let c = &mut self.conns[i];
        c.inflight += 1;
        c.conn.query(now, &query);
        if !c.started {
            c.started = true;
            c.conn.start(now, rng, out);
        }
        c.conn.poll(now, out);
        self.harvest(now);
    }

    /// Route an upstream packet to its connection.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Vec<Packet>) {
        if let Some(c) = self.conns.iter_mut().find(|c| c.port == pkt.dst.port) {
            c.conn.on_packet(now, pkt, out);
            c.conn.poll(now, out);
        }
        self.harvest(now);
    }

    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        for c in &mut self.conns {
            c.conn.poll(now, out);
        }
        self.harvest(now);
    }

    fn harvest(&mut self, _now: SimTime) {
        for c in &mut self.conns {
            for (_, msg) in c.conn.take_responses() {
                c.inflight = c.inflight.saturating_sub(1);
                let Some(domain) = self.pending.remove(&msg.header.id) else {
                    continue;
                };
                let ip = (msg.header.rcode == Rcode::NoError)
                    .then(|| {
                        msg.answers.iter().find_map(|rr| match rr.rdata {
                            RData::A(octets) => {
                                Some(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
                            }
                            _ => None,
                        })
                    })
                    .flatten();
                self.resolved.push((domain, ip));
            }
            // Capture freshly issued resumption material.
            let s = c.conn.session_state();
            if s.tls_ticket.is_some() {
                self.session.tls_ticket = s.tls_ticket;
            }
            if s.quic_token.is_some() {
                self.session.quic_token = s.quic_token;
            }
            if s.quic_version.is_some() {
                self.session.quic_version = s.quic_version;
            }
        }
    }

    /// Completed lookups (domain, address or failure).
    pub fn take_resolved(&mut self) -> Vec<(String, Option<Ipv4Addr>)> {
        std::mem::take(&mut self.resolved)
    }

    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conns
            .iter()
            .filter_map(|c| c.conn.next_timeout())
            .min()
    }

    /// A lookup failed permanently (all retries exhausted).
    pub fn any_failed(&self) -> bool {
        !self.pending.is_empty() && self.conns.iter().all(|c| c.conn.failed())
    }
}
