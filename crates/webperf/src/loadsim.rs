//! One page-load measurement as a micro-simulation.
//!
//! Reproduces §2's Web-performance methodology:
//!
//! 1. set up the DNS proxy as the browser's resolver, forwarding to one
//!    upstream DoX resolver; OS and proxy caches are disabled;
//! 2. navigate once to warm the *resolver's* cache (recursion happens
//!    here) and to collect TLS/QUIC resumption material;
//! 3. reset the proxy's sessions (keeping tickets/tokens/versions);
//! 4. navigate again, cold browser, measuring FCP and PLT — repeated
//!    `measured_loads` times (the paper performs four and takes the
//!    median).

use crate::browser::{origin_ip, BrowserHost, PageLoadResult};
use crate::origin::OriginHost;
use crate::page::PageProfile;
use crate::proxy::DnsProxy;
use doqlab_dox::{ClientConfig, DnsTransport};
use doqlab_resolver::{RecursionModel, ResolverHost};
use doqlab_simnet::path::{GeoPathModel, GeoPathParams};
use doqlab_simnet::{Coord, Duration, Ipv4Addr, Simulator, SocketAddr};
use std::collections::{BTreeMap, HashMap};

/// Configuration of one [vantage point : resolver : protocol : page]
/// measurement unit.
#[derive(Debug, Clone)]
pub struct PageLoadConfig {
    pub seed: u64,
    pub transport: DnsTransport,
    pub page: PageProfile,
    pub resolver: doqlab_dox::ServerConfig,
    pub recursion: RecursionModel,
    pub vp_location: Coord,
    pub resolver_location: Coord,
    /// Reproduce the dnsproxy DoT reconnect bug (§3.2).
    pub dot_bug: bool,
    pub enable_0rtt: bool,
    /// RFC 9210 client behaviour for DoTCP: request
    /// edns-tcp-keepalive, use TFO, re-use the connection (ablation A4).
    pub tcp_keepalive_client: bool,
    /// Measured navigations after the warming one.
    pub measured_loads: usize,
    /// Give up on a navigation after this much simulated time.
    pub load_timeout: Duration,
    pub path_params: GeoPathParams,
}

impl PageLoadConfig {
    pub fn new(page: PageProfile, transport: DnsTransport) -> Self {
        PageLoadConfig {
            seed: 1,
            transport,
            page,
            resolver: doqlab_dox::ServerConfig::default(),
            recursion: RecursionModel::default(),
            vp_location: Coord::new(50.1, 8.7),
            resolver_location: Coord::new(48.1, 11.6),
            dot_bug: true,
            enable_0rtt: true,
            tcp_keepalive_client: false,
            measured_loads: 1,
            load_timeout: Duration::from_secs(30),
            path_params: GeoPathParams::default(),
        }
    }
}

/// Run the warming navigation plus `measured_loads` measured ones in a
/// simulator of their own. Returns one result per measured navigation.
pub fn run_page_load(cfg: &PageLoadConfig) -> Vec<PageLoadResult> {
    let mut sim = Simulator::arena();
    run_page_load_in(&mut sim, cfg)
}

/// Run the warming navigation plus `measured_loads` measured ones in a
/// reusable simulator arena: the arena is reset (reusing its
/// allocations across page loads) and left holding the final state.
pub fn run_page_load_in(sim: &mut Simulator, cfg: &PageLoadConfig) -> Vec<PageLoadResult> {
    // --- topology -------------------------------------------------------
    let mut path = GeoPathModel::new(cfg.path_params.clone());
    let resolver_ip = cfg.resolver.ip;
    path.place(resolver_ip, cfg.resolver_location);

    // Browser machines: one IP per navigation (the simulator binds an
    // address once), all at the vantage point.
    let nav_count = 1 + cfg.measured_loads;
    let client_ips: Vec<Ipv4Addr> = (0..nav_count)
        .map(|i| Ipv4Addr::new(10, 99, 0, i as u8 + 1))
        .collect();
    for ip in &client_ips {
        path.place(*ip, cfg.vp_location);
    }

    // Origins: CDN-like, near the vantage point. BTreeMap so host
    // creation order (and thus server ids and event interleaving) is a
    // pure function of the page, not of hash-seed iteration order.
    let mut origin_sizes: BTreeMap<Ipv4Addr, HashMap<String, usize>> = BTreeMap::new();
    for r in &cfg.page.resources {
        origin_sizes
            .entry(origin_ip(&r.domain))
            .or_default()
            .insert(r.path.clone(), r.size);
    }
    sim.reset(cfg.seed, Box::new(path.clone()));
    for (i, (ip, sizes)) in origin_sizes.into_iter().enumerate() {
        // Scatter edge nodes a few hundred km around the vantage point.
        let jitter = (i as f64 * 0.7).sin() * 3.0;
        let loc = Coord::new(cfg.vp_location.lat + jitter, cfg.vp_location.lon + jitter);
        // The simulator owns a clone of the model; placements must go in
        // before construction — rebuild below instead.
        let _ = loc;
        sim.add_host(
            Box::new(OriginHost::new(ip, 0x0419 + i as u64, sizes)),
            &[ip],
        );
    }
    // (Origins share the vantage point placement default: co-located
    // with the client up to the base delay — a CDN edge.)

    let resolver = ResolverHost::new(cfg.resolver.clone(), cfg.recursion.clone());
    sim.add_host(Box::new(resolver), &[resolver_ip]);

    // --- navigations ------------------------------------------------------
    let upstream = SocketAddr::new(resolver_ip, cfg.transport.port());
    let mut session = doqlab_dox::SessionState::default();
    let mut results = Vec::new();
    for (nav, &client_ip) in client_ips.iter().enumerate() {
        let client_cfg = ClientConfig {
            session: session.clone(),
            enable_0rtt: cfg.enable_0rtt,
            request_tcp_keepalive: cfg.tcp_keepalive_client,
            enable_tfo: cfg.tcp_keepalive_client,
            ..ClientConfig::default()
        };
        let proxy = DnsProxy::new(client_ip, upstream, cfg.transport, client_cfg, cfg.dot_bug);
        let browser = BrowserHost::new(client_ip, cfg.page.clone(), proxy);
        let bid = sim.add_host(Box::new(browser), &[client_ip]);
        let start = sim.now();
        sim.with_host::<BrowserHost, _>(bid, |b, ctx| b.navigate(ctx));
        let deadline = start + cfg.load_timeout;
        // Run until the page completes (or fails) or the deadline hits.
        loop {
            let b = sim.host::<BrowserHost>(bid);
            if b.is_complete() || sim.now() >= deadline {
                break;
            }
            let step = (sim.now() + Duration::from_millis(200)).min(deadline);
            sim.run_until(step);
            if sim.is_idle() {
                break;
            }
        }
        let browser = sim.host_mut::<BrowserHost>(bid);
        let result = browser.result();
        // Carry resumption material to the next navigation (the reset
        // keeps tickets, drops connections).
        let s = std::mem::take(&mut browser.proxy.session);
        if s.tls_ticket.is_some() {
            session.tls_ticket = s.tls_ticket;
        }
        if s.quic_token.is_some() {
            session.quic_token = s.quic_token;
        }
        if s.quic_version.is_some() {
            session.quic_version = s.quic_version;
        }
        if nav > 0 {
            results.push(result);
        }
        // Let in-flight transport teardown settle briefly before the
        // next navigation.
        let settle = sim.now() + Duration::from_millis(50);
        sim.run_until(settle);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::tranco_top10;

    fn base(transport: DnsTransport) -> PageLoadConfig {
        let page = tranco_top10().remove(0); // wikipedia.org
        PageLoadConfig {
            seed: 7,
            ..PageLoadConfig::new(page, transport)
        }
    }

    #[test]
    fn wikipedia_loads_over_every_transport() {
        for transport in DnsTransport::ALL {
            let results = run_page_load(&base(transport));
            assert_eq!(results.len(), 1);
            let r = results[0];
            assert!(!r.failed, "{transport} failed");
            assert!(r.fcp_ms > 0.0 && r.fcp_ms <= r.plt_ms, "{transport}: {r:?}");
            assert_eq!(r.dns_queries, 1, "{transport}");
        }
    }

    #[test]
    fn complex_page_issues_many_dns_queries() {
        let page = tranco_top10().pop().unwrap(); // youtube.com
        let cfg = PageLoadConfig {
            seed: 9,
            ..PageLoadConfig::new(page, DnsTransport::DoQ)
        };
        let r = run_page_load(&cfg)[0];
        assert!(!r.failed);
        assert_eq!(r.dns_queries, 11);
        assert!(r.plt_ms >= r.fcp_ms);
    }

    #[test]
    fn doudp_beats_doq_slightly_on_simple_pages() {
        let udp = run_page_load(&base(DnsTransport::DoUdp))[0];
        let doq = run_page_load(&base(DnsTransport::DoQ))[0];
        assert!(!udp.failed && !doq.failed);
        assert!(
            doq.plt_ms >= udp.plt_ms,
            "DoQ {} should not beat DoUDP {} without 0-RTT",
            doq.plt_ms,
            udp.plt_ms
        );
    }

    #[test]
    fn doq_beats_doh_on_simple_pages() {
        let doh = run_page_load(&base(DnsTransport::DoH))[0];
        let doq = run_page_load(&base(DnsTransport::DoQ))[0];
        assert!(!doh.failed && !doq.failed);
        assert!(
            doq.plt_ms < doh.plt_ms,
            "DoQ {} vs DoH {}",
            doq.plt_ms,
            doh.plt_ms
        );
    }

    #[test]
    fn dot_bug_opens_extra_connections_on_multi_domain_pages() {
        let page = tranco_top10().pop().unwrap(); // youtube: many queries
        let mut cfg = PageLoadConfig {
            seed: 3,
            ..PageLoadConfig::new(page, DnsTransport::DoT)
        };
        cfg.dot_bug = true;
        let buggy = run_page_load(&cfg)[0];
        cfg.dot_bug = false;
        let fixed = run_page_load(&cfg)[0];
        assert!(
            buggy.proxy_connections > fixed.proxy_connections,
            "bug {} vs fixed {}",
            buggy.proxy_connections,
            fixed.proxy_connections
        );
        assert_eq!(fixed.proxy_connections, 1);
    }

    #[test]
    fn dotcp_opens_one_connection_per_query() {
        let page = tranco_top10().remove(8); // microsoft.com, 9 queries
        let cfg = PageLoadConfig {
            seed: 3,
            ..PageLoadConfig::new(page, DnsTransport::DoTcp)
        };
        let r = run_page_load(&cfg)[0];
        assert!(!r.failed);
        assert_eq!(r.proxy_connections, r.dns_queries);
    }

    #[test]
    fn multiple_measured_loads_supported() {
        let mut cfg = base(DnsTransport::DoQ);
        cfg.measured_loads = 3;
        let results = run_page_load(&cfg);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| !r.failed));
    }
}
