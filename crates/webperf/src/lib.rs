//! # doqlab-webperf — the Web-performance substrate
//!
//! Everything §3.2 of the paper needs:
//!
//! * [`page`] — profiles of the Tranco top-10 landing pages as resource
//!   dependency graphs over one or more domains. The per-page average
//!   DNS-query counts match the ordering of the paper's Fig. 4 (from
//!   `wikipedia.org` with a single query to `youtube.com` with eleven).
//! * [`origin`] — simulated origin web servers: HTTP/2 over TLS over
//!   TCP, one host per content IP, serving the profile's resources.
//! * [`http`] — the browser-side HTTPS client connection.
//! * [`proxy`] — the local DNS proxy (the paper uses AdGuard dnsproxy):
//!   forwards stub queries to the configured upstream resolver over any
//!   of the five transports, cache disabled, sessions resettable
//!   between navigations, with the paper's observed **DoT
//!   in-flight-query reconnect bug** behind a flag.
//! * [`browser`] — a Chromium-like page loader: per-navigation DNS
//!   de-duplication, one HTTP/2 connection per origin, dependency-driven
//!   resource fetching, First Contentful Paint and Page Load Time.
//! * [`loadsim`] — assembles browser + resolver + origins into one
//!   micro-simulation per page load and returns the metrics.

pub mod browser;
pub mod http;
pub mod loadsim;
pub mod origin;
pub mod page;
pub mod proxy;

pub use browser::{BrowserHost, PageLoadResult};
pub use loadsim::{run_page_load, run_page_load_in, PageLoadConfig};
pub use page::{tranco_top10, PageProfile, Resource};
pub use proxy::DnsProxy;
