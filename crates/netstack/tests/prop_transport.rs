//! Property-based transport tests: whatever the network does within
//! the model's envelope (loss, delay, duplication), the stacks must
//! deliver exactly the bytes that were sent, in order.

use doqlab_netstack::quic::{QuicConfig, QuicConnection, QuicServer, QUIC_V1};
use doqlab_netstack::tcp::{TcpConfig, TcpSocket};
use doqlab_netstack::tls::{TlsClient, TlsConfig, TlsServer};
use doqlab_simnet::{Duration, Ipv4Addr, SimRng, SimTime, SocketAddr};
use proptest::prelude::*;

fn sa(h: u8, port: u16) -> SocketAddr {
    SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), port)
}

/// Drive two TCP sockets over a lossy in-order pipe; returns what `b`
/// received.
fn tcp_transfer(data: &[u8], loss_seed: u64, loss: f64) -> Vec<u8> {
    let mut rng = SimRng::new(loss_seed);
    let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 7, TcpConfig::default());
    let mut b = TcpSocket::server(sa(2, 2), sa(1, 1), 9, TcpConfig::default());
    a.open(SimTime::ZERO);
    a.send(data);
    a.close();
    let mut now = SimTime::ZERO;
    let mut received = Vec::new();
    for _ in 0..50_000 {
        let mut idle = true;
        for seg in a.poll(now) {
            if !rng.chance(loss) {
                b.on_segment(now, &seg);
            }
            idle = false;
        }
        for seg in b.poll(now) {
            if !rng.chance(loss) {
                a.on_segment(now, &seg);
            }
            idle = false;
        }
        received.extend(b.recv());
        if b.peer_closed() && received.len() >= data.len() {
            break;
        }
        if idle {
            // Jump to the next retransmission timer.
            match [a.next_timeout(), b.next_timeout()]
                .into_iter()
                .flatten()
                .min()
            {
                Some(t) => now = t.max(now + Duration::from_micros(1)),
                None => break,
            }
        } else {
            now += Duration::from_millis(1);
        }
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tcp_delivers_exactly_under_loss(
        len in 0usize..20_000,
        seed in any::<u64>(),
        loss in 0.0f64..0.25,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        let received = tcp_transfer(&data, seed, loss);
        prop_assert_eq!(received, data);
    }

    #[test]
    fn tls_stream_is_transparent_under_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..2000), 1..5),
        chunk in 1usize..700,
    ) {
        let cfg = TlsConfig {
            server_id: 3,
            alpn: vec![b"dot".to_vec()],
            ..TlsConfig::default()
        };
        let mut c = TlsClient::new(cfg.clone(), None);
        let mut s = TlsServer::new(cfg);
        c.start(SimTime::ZERO);
        for p in &payloads {
            c.write_app(p);
        }
        let mut server_got = Vec::new();
        for _ in 0..12 {
            let out = c.take_output();
            for piece in out.chunks(chunk) {
                s.read_wire(SimTime::ZERO, piece);
            }
            server_got.extend(s.read_app());
            let out = s.take_output();
            for piece in out.chunks(chunk) {
                c.read_wire(SimTime::ZERO, piece);
            }
            if c.is_connected() && s.is_connected() {
                let out = c.take_output();
                for piece in out.chunks(chunk) {
                    s.read_wire(SimTime::ZERO, piece);
                }
                server_got.extend(s.read_app());
                break;
            }
        }
        let want: Vec<u8> = payloads.concat();
        prop_assert_eq!(server_got, want);
    }

    #[test]
    fn quic_stream_delivers_exactly_under_loss(
        len in 1usize..30_000,
        seed in any::<u64>(),
        loss in 0.0f64..0.2,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 17 % 249) as u8).collect();
        let tls = TlsConfig { server_id: 5, alpn: vec![b"doq".to_vec()], ..TlsConfig::default() };
        let cfg = QuicConfig { tls, ..QuicConfig::default() };
        let mut rng = SimRng::new(seed);
        let mut client = QuicConnection::client(
            cfg.clone(), sa(1, 50_000), sa(2, 853), QUIC_V1, None, None, &mut rng, SimTime::ZERO,
        );
        let mut server = QuicServer::new(sa(2, 853), cfg);
        let stream = client.open_bi();
        client.stream_send(stream, &data, true);
        let mut now = SimTime::ZERO;
        let mut got = Vec::new();
        let mut fin = false;
        for _ in 0..50_000 {
            let mut idle = true;
            for d in client.poll_transmit(now) {
                if !rng.chance(loss) {
                    server.handle_datagram(now, sa(1, 50_000), &d);
                }
                idle = false;
            }
            for (_, d) in server.poll_transmit(now) {
                if !rng.chance(loss) {
                    client.handle_datagram(now, &d);
                }
                idle = false;
            }
            if let Some(conn) = server.connection(sa(1, 50_000)) {
                let _ = conn.take_new_peer_streams();
                let (chunk, f) = conn.stream_recv(stream);
                got.extend(chunk);
                fin |= f;
                if fin && got.len() >= data.len() {
                    break;
                }
            }
            if idle {
                match [client.next_timeout(), server.next_timeout()]
                    .into_iter()
                    .flatten()
                    .min()
                {
                    Some(t) => now = t.max(now + Duration::from_micros(1)),
                    None => break,
                }
            } else {
                now += Duration::from_millis(2);
            }
        }
        prop_assert!(fin, "stream must finish (loss {loss})");
        prop_assert_eq!(got, data);
    }

    #[test]
    fn quic_datagrams_never_panic_when_corrupted(
        seed in any::<u64>(),
        corrupt_at in any::<usize>(),
        new_byte in any::<u8>(),
    ) {
        let tls = TlsConfig { server_id: 5, alpn: vec![b"doq".to_vec()], ..TlsConfig::default() };
        let cfg = QuicConfig { tls, ..QuicConfig::default() };
        let mut rng = SimRng::new(seed);
        let mut client = QuicConnection::client(
            cfg.clone(), sa(1, 50_000), sa(2, 853), QUIC_V1, None, None, &mut rng, SimTime::ZERO,
        );
        let mut server = QuicServer::new(sa(2, 853), cfg);
        for mut d in client.poll_transmit(SimTime::ZERO) {
            if !d.is_empty() {
                let at = corrupt_at % d.len();
                d[at] = new_byte;
            }
            // Must not panic, whatever the corruption did.
            server.handle_datagram(SimTime::ZERO, sa(1, 50_000), &d);
        }
        let _ = server.poll_transmit(SimTime::ZERO);
    }
}
