//! Differential property test: the QUIC path-validation state machine
//! (RFC 9000 §8.2) against a naive executable spec, in the style of
//! `simnet/tests/prop_event_queue.rs`. Arbitrary interleavings of
//! rebinds, lost challenges (probe timeouts), stale/reordered
//! PATH_RESPONSEs and peer challenges must leave the connection's
//! observable probe state — pending challenge data, retry count,
//! abandonment — exactly where the spec says it should be. The mobility
//! campaign's survival numbers are only meaningful if this machine
//! cannot be confused by reordering.

use doqlab_netstack::quic::{
    Frame, PacketType, QuicConfig, QuicConnection, QuicError, QuicPacket, QuicServer, QUIC_V1,
};
use doqlab_netstack::tls::TlsConfig;
use doqlab_simnet::{Duration, Ipv4Addr, SimRng, SimTime, SocketAddr};
use proptest::prelude::*;

fn sa(h: u8, port: u16) -> SocketAddr {
    SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), port)
}

fn cfg() -> QuicConfig {
    QuicConfig {
        tls: TlsConfig {
            server_id: 7,
            alpn: vec![b"doq".to_vec()],
            ..TlsConfig::default()
        },
        ..QuicConfig::default()
    }
}

/// Complete a handshake against a throwaway server and return the
/// established client connection; afterwards the test itself plays the
/// peer so it can drop, delay and forge path frames at will.
fn established_client() -> QuicConnection {
    let mut rng = SimRng::new(42);
    let mut c = QuicConnection::client(
        cfg(),
        sa(1, 40000),
        sa(2, 853),
        QUIC_V1,
        None,
        None,
        &mut rng,
        SimTime::ZERO,
    );
    let mut server = QuicServer::new(sa(2, 853), cfg());
    let mut now = SimTime::ZERO;
    for _ in 0..64 {
        if c.is_established() && c.path_probe().is_none() {
            break;
        }
        for d in c.poll_transmit(now) {
            server.handle_datagram(now, c.local, &d);
        }
        for (_, d) in server.poll_transmit(now) {
            c.handle_datagram(now, &d);
        }
        now += Duration::from_millis(1);
    }
    assert!(c.is_established());
    c
}

/// What the test does to the connection at each step.
#[derive(Debug, Clone)]
enum Op {
    /// The client's address changes (again): a fresh validation starts
    /// even if one is already running.
    Rebind,
    /// Deliver a PATH_RESPONSE echoing the outstanding challenge.
    RespondCurrent,
    /// Deliver a PATH_RESPONSE for a superseded or never-sent
    /// challenge — a reordered or forged echo that must be ignored.
    RespondStale,
    /// The challenge (or its echo) was lost: jump to the probe
    /// deadline so the retry timer fires.
    ProbeTimeout,
    /// The peer probes us: deliver a PATH_CHALLENGE and demand the
    /// echo in the next flight.
    PeerChallenge(u64),
    /// Poll with nothing due; must not disturb the probe state.
    Poll,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::strategy::Just(Op::Rebind),
        proptest::strategy::Just(Op::RespondCurrent),
        proptest::strategy::Just(Op::RespondStale),
        proptest::strategy::Just(Op::ProbeTimeout),
        any::<u64>().prop_map(Op::PeerChallenge),
        proptest::strategy::Just(Op::Poll),
    ]
}

/// The naive spec: what RFC 9000 §8.2 says the probe state must be,
/// with none of the real machine's framing, timers or queues.
#[derive(Debug, Default)]
struct SpecPathValidator {
    pending: Option<[u8; 8]>,
    retries: u32,
    abandoned: bool,
}

impl SpecPathValidator {
    /// Mirrors `PATH_PROBE_MAX_RETRIES` in the implementation.
    const MAX_RETRIES: u32 = 5;

    fn rebind(&mut self, challenge: [u8; 8]) {
        self.pending = Some(challenge);
        self.retries = 0;
    }

    fn response(&mut self, data: [u8; 8]) {
        if self.pending == Some(data) {
            self.pending = None;
            self.retries = 0;
        }
    }

    fn timeout(&mut self) {
        if self.pending.is_none() {
            return;
        }
        self.retries += 1;
        if self.retries > Self::MAX_RETRIES {
            self.pending = None;
            self.abandoned = true;
        }
    }
}

/// Deliver frames to the client in a synthetic 1-RTT packet.
fn deliver(c: &mut QuicConnection, now: SimTime, pn: &mut u64, frames: &[Frame]) {
    let mut payload = Vec::new();
    for f in frames {
        f.encode(&mut payload);
    }
    let pkt = QuicPacket::new(PacketType::OneRtt, QUIC_V1, [0; 8], [0; 8], *pn, payload);
    *pn += 1;
    let mut buf = Vec::new();
    pkt.encode(&mut buf);
    c.handle_datagram(now, &buf);
}

/// Drain the client's outbound datagrams; ACK every 1-RTT packet (so
/// the ordinary PTO machinery stays quiet and only the path probe
/// timer drives retries) and return all frames seen.
fn drain(c: &mut QuicConnection, now: SimTime, pn: &mut u64) -> Vec<Frame> {
    let mut seen = Vec::new();
    let mut acks = Vec::new();
    for dgram in c.poll_transmit(now) {
        let mut pos = 0;
        while pos < dgram.len() {
            let Some(pkt) = QuicPacket::decode(&dgram, &mut pos) else {
                break;
            };
            if pkt.ptype == PacketType::OneRtt {
                acks.push(pkt.packet_number);
            }
            if let Some(frames) = Frame::decode_all(&pkt.payload) {
                seen.extend(frames);
            }
        }
    }
    if !acks.is_empty() {
        let ranges = acks.iter().map(|&p| (p, p)).collect();
        deliver(c, now, pn, &[Frame::Ack { ranges, delay: 0 }]);
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn path_validation_matches_naive_spec(ops in proptest::collection::vec(op(), 1..40)) {
        let mut c = established_client();
        let mut spec = SpecPathValidator::default();
        let mut now = SimTime::from_secs(1);
        let mut pn = 1_000u64; // clear of the handshake's packet numbers
        let mut stale: Vec<[u8; 8]> = vec![[0xEE; 8]]; // never-issued data
        let mut rebinds = 0u8;

        for op in &ops {
            now += Duration::from_millis(1);
            match *op {
                Op::Rebind => {
                    rebinds += 1;
                    if let Some((old, _, _)) = c.path_probe() {
                        stale.push(old);
                    }
                    c.rebind(now, sa(3, 40000 + rebinds as u16));
                    let (data, _, _) = c.path_probe().expect("rebind starts a probe");
                    spec.rebind(data);
                }
                Op::RespondCurrent => {
                    let data = c.path_probe().map(|(d, _, _)| d).unwrap_or([0xAA; 8]);
                    deliver(&mut c, now, &mut pn, &[Frame::PathResponse(data)]);
                    spec.response(data);
                }
                Op::RespondStale => {
                    let data = stale[stale.len() - 1];
                    deliver(&mut c, now, &mut pn, &[Frame::PathResponse(data)]);
                    spec.response(data);
                }
                Op::ProbeTimeout => {
                    if let Some((_, _, deadline)) = c.path_probe() {
                        now = deadline.max(now);
                        let _ = drain(&mut c, now, &mut pn);
                        spec.timeout();
                    }
                }
                Op::PeerChallenge(x) => {
                    let data = x.to_be_bytes();
                    deliver(&mut c, now, &mut pn, &[Frame::PathChallenge(data)]);
                    let frames = drain(&mut c, now, &mut pn);
                    if !spec.abandoned {
                        prop_assert!(
                            frames.contains(&Frame::PathResponse(data)),
                            "peer challenge not echoed; frames: {frames:?}"
                        );
                    }
                }
                Op::Poll => {
                    let _ = drain(&mut c, now, &mut pn);
                }
            }

            // The machine and the spec must agree on every observable.
            prop_assert_eq!(
                c.path_probe().map(|(d, r, _)| (d, r)),
                spec.pending.map(|d| (d, spec.retries))
            );
            prop_assert_eq!(c.is_closed(), spec.abandoned);
            if spec.abandoned {
                prop_assert_eq!(c.error(), Some(&QuicError::PathValidationFailed));
                break;
            }
        }
    }
}
