//! End-to-end QUIC tests: handshakes, resumption, amplification limit,
//! version negotiation, address validation, streams, 0-RTT and loss
//! recovery — every behaviour the paper's DoQ measurements rest on.

use doqlab_netstack::quic::*;
use doqlab_netstack::tls::{SessionTicket, TlsConfig};
use doqlab_simnet::{Duration, Ipv4Addr, SimRng, SimTime, SocketAddr};

fn sa(h: u8, port: u16) -> SocketAddr {
    SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), port)
}

fn client_addr() -> SocketAddr {
    sa(1, 40000)
}

fn server_addr() -> SocketAddr {
    sa(2, 853)
}

fn tls(alpn: &str) -> TlsConfig {
    TlsConfig {
        server_id: 7,
        alpn: vec![alpn.as_bytes().to_vec()],
        ..TlsConfig::default()
    }
}

fn server_cfg(alpn: &str) -> QuicConfig {
    QuicConfig {
        tls: tls(alpn),
        ..QuicConfig::default()
    }
}

/// Shuttles datagrams between one client connection and a server
/// endpoint with a fixed one-way delay, counting bytes per direction.
struct Shuttle {
    server: QuicServer,
    now: SimTime,
    delay: Duration,
    /// (deliver_at, to_client, datagram)
    wire: Vec<(SimTime, bool, Vec<u8>)>,
    pub c2s_bytes: usize,
    pub s2c_bytes: usize,
    pub c2s_datagrams: Vec<usize>,
    /// Drop the nth client->server datagram (0-based), once.
    drop_c2s: Option<usize>,
    c2s_count: usize,
}

impl Shuttle {
    fn new(server: QuicServer) -> Self {
        Shuttle {
            server,
            now: SimTime::ZERO,
            delay: Duration::from_millis(20),
            wire: Vec::new(),
            c2s_bytes: 0,
            s2c_bytes: 0,
            c2s_datagrams: Vec::new(),
            drop_c2s: None,
            c2s_count: 0,
        }
    }

    fn run(&mut self, client: &mut QuicConnection, until: SimTime) {
        for _ in 0..10_000 {
            if self.now > until {
                break;
            }
            for d in client.poll_transmit(self.now) {
                self.c2s_bytes += d.len();
                self.c2s_datagrams.push(d.len());
                let dropped = self.drop_c2s == Some(self.c2s_count);
                self.c2s_count += 1;
                if !dropped {
                    self.wire.push((self.now + self.delay, false, d));
                }
            }
            for (_, d) in self.server.poll_transmit(self.now) {
                self.s2c_bytes += d.len();
                self.wire.push((self.now + self.delay, true, d));
            }
            self.wire.sort_by_key(|(t, _, _)| *t);
            if let Some((t, to_client, d)) = self.wire.first().cloned() {
                if t > until {
                    self.now = until;
                    continue;
                }
                self.wire.remove(0);
                self.now = t;
                if to_client {
                    client.handle_datagram(self.now, &d);
                } else {
                    let imm = self.server.handle_datagram(self.now, client.local, &d);
                    for (_, d) in imm {
                        self.s2c_bytes += d.len();
                        self.wire.push((self.now + self.delay, true, d));
                    }
                }
            } else {
                let t = [client.next_timeout(), self.server.next_timeout()]
                    .into_iter()
                    .flatten()
                    .min();
                match t {
                    Some(t) if t <= until => self.now = t.max(self.now),
                    _ => break,
                }
            }
        }
    }
}

fn dial(
    cfg: QuicConfig,
    version: u32,
    ticket: Option<SessionTicket>,
    token: Option<Vec<u8>>,
) -> QuicConnection {
    let mut rng = SimRng::new(1);
    QuicConnection::client(
        cfg,
        client_addr(),
        server_addr(),
        version,
        ticket,
        token,
        &mut rng,
        SimTime::ZERO,
    )
}

#[test]
fn full_handshake_completes_in_one_rtt() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    assert_eq!(c.negotiated_alpn(), Some(&b"doq"[..]));
    assert!(!c.is_resumption());
    // One RTT = 40 ms with our 20 ms one-way delay.
    assert_eq!(c.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn client_initial_datagram_is_padded_to_1200() {
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    let dgrams = c.poll_transmit(SimTime::ZERO);
    assert_eq!(dgrams.len(), 1);
    assert_eq!(dgrams[0].len(), 1200);
}

fn get_ticket_and_token(alpn: &str) -> (SessionTicket, Vec<u8>) {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg(alpn)));
    let mut c = dial(server_cfg(alpn), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    let tickets = c.take_tickets();
    let token = c.take_new_token().expect("server issues NEW_TOKEN");
    (
        tickets.into_iter().next().expect("server issues a ticket"),
        token,
    )
}

#[test]
fn server_issues_ticket_and_token() {
    let (ticket, token) = get_ticket_and_token("doq");
    assert_eq!(ticket.server_id, 7);
    assert_eq!(ticket.lifetime, Duration::from_secs(7 * 24 * 3600));
    assert_eq!(token.len(), 32);
}

#[test]
fn resumption_skips_certificate_and_shrinks_server_flight() {
    let (ticket, token) = get_ticket_and_token("doq");

    let mut sh_full = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c_full = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh_full.run(&mut c_full, SimTime::from_millis(45));
    let full_bytes = sh_full.s2c_bytes;

    let mut sh_res = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c_res = dial(server_cfg("doq"), QUIC_V1, Some(ticket), Some(token));
    sh_res.run(&mut c_res, SimTime::from_millis(45));
    assert!(c_res.is_established());
    assert!(c_res.is_resumption());
    // The resumed flight is one padded 1200-byte datagram (no
    // certificate); the full flight spans several datagrams.
    assert!(
        full_bytes > sh_res.s2c_bytes + 1500,
        "full {} vs resumed {}",
        full_bytes,
        sh_res.s2c_bytes
    );
}

#[test]
fn amplification_limit_stalls_large_certificate_without_token() {
    // A certificate chain too large for 3x1200 forces the server to
    // stall mid-flight until another client datagram arrives: the
    // handshake takes 2 RTT instead of 1. This is the preliminary-paper
    // effect the authors eliminated with Session Resumption.
    let big_cert = TlsConfig {
        cert_chain_len: 4500,
        ..tls("doq")
    };
    let cfg = QuicConfig {
        tls: big_cert,
        ..QuicConfig::default()
    };
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c = dial(cfg.clone(), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    // 2 RTT = 80 ms (the ACK that unblocks the server is itself padded
    // to 1200, granting 3600 more bytes).
    let t = c.established_at().unwrap();
    assert!(
        t >= SimTime::from_millis(80),
        "expected amplification stall, established at {t}"
    );

    // Same certificate, but a small one fits: 1 RTT.
    let small = QuicConfig {
        tls: tls("doq"),
        ..QuicConfig::default()
    };
    let mut sh2 = Shuttle::new(QuicServer::new(server_addr(), small.clone()));
    let mut c2 = dial(small, QUIC_V1, None, None);
    sh2.run(&mut c2, SimTime::from_secs(5));
    assert_eq!(c2.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn token_lifts_amplification_limit() {
    // With a valid address-validation token, even the large certificate
    // flows in one RTT: the server is validated from the first Initial.
    let big_cert = TlsConfig {
        cert_chain_len: 4500,
        ..tls("doq")
    };
    let cfg = QuicConfig {
        tls: big_cert,
        ..QuicConfig::default()
    };
    let (_, token) = get_ticket_and_token("doq");
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c = dial(cfg, QUIC_V1, None, Some(token));
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    assert_eq!(c.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn version_negotiation_adds_one_round_trip() {
    // Server only supports v1; client dials draft-29.
    let cfg = QuicConfig {
        versions: vec![QUIC_V1],
        ..server_cfg("doq")
    };
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg));
    let mut c = dial(server_cfg("doq"), draft_version(29), None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    assert_eq!(c.version(), QUIC_V1);
    assert_eq!(c.vn_round_trips, 1);
    // 2 RTT total: VN exchange + normal handshake.
    assert_eq!(c.established_at(), Some(SimTime::from_millis(80)));
}

#[test]
fn remembered_version_avoids_negotiation() {
    let cfg = QuicConfig {
        versions: vec![QUIC_V1],
        ..server_cfg("doq")
    };
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert_eq!(c.vn_round_trips, 0);
    assert_eq!(c.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn version_zero_probe_gets_version_negotiation_statelessly() {
    // The paper's ZMap scan: an Initial with version 0 must elicit a VN
    // packet without creating connection state.
    let mut server = QuicServer::new(server_addr(), server_cfg("doq"));
    let probe = {
        let mut p = QuicPacket::new(
            PacketType::Initial,
            0,
            *b"scanscan",
            *b"probecid",
            0,
            vec![0; 30],
        );
        p.token = Vec::new();
        let mut buf = Vec::new();
        p.encode(&mut buf);
        buf
    };
    let responses = server.handle_datagram(SimTime::ZERO, client_addr(), &probe);
    assert_eq!(responses.len(), 1);
    let vn = VersionNegotiation::decode(&responses[0].1).expect("VN packet");
    assert!(vn.supported.contains(&QUIC_V1));
    assert_eq!(vn.dcid, *b"probecid", "echoes scanner's SCID as DCID");
    assert_eq!(server.len(), 0, "no state created");
}

#[test]
fn retry_costs_one_extra_round_trip() {
    let cfg = QuicConfig {
        retry_required: true,
        ..server_cfg("doq")
    };
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c = dial(cfg.clone(), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    assert_eq!(c.established_at(), Some(SimTime::from_millis(80)));

    // With a token from a previous connection, Retry is skipped.
    let (_, token) = get_ticket_and_token("doq");
    let mut sh2 = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c2 = dial(cfg, QUIC_V1, None, Some(token));
    sh2.run(&mut c2, SimTime::from_secs(5));
    assert_eq!(c2.established_at(), Some(SimTime::from_millis(40)));
}

#[test]
fn stream_exchange_like_a_dns_query() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    assert!(c.is_established());
    let id = c.open_bi();
    assert_eq!(id, 0, "first client bidi stream is 0 per RFC 9250");
    c.stream_send(id, b"dns-query", true);
    sh.run(&mut c, SimTime::from_secs(2));
    // Server sees the stream, echoes a response and FINs.
    let server_conn = sh.server.connection(client_addr()).unwrap();
    let new = server_conn.take_new_peer_streams();
    assert_eq!(new, vec![0]);
    let (data, fin) = server_conn.stream_recv(0);
    assert_eq!(data, b"dns-query");
    assert!(fin);
    server_conn.stream_send(0, b"dns-response", true);
    sh.run(&mut c, SimTime::from_secs(3));
    let (resp, fin) = c.stream_recv(id);
    assert_eq!(resp, b"dns-response");
    assert!(fin);
}

#[test]
fn multiple_streams_are_independent() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    let a = c.open_bi();
    let b = c.open_bi();
    assert_eq!((a, b), (0, 4));
    c.stream_send(a, b"q1", true);
    c.stream_send(b, b"q2", true);
    sh.run(&mut c, SimTime::from_secs(2));
    let server_conn = sh.server.connection(client_addr()).unwrap();
    assert_eq!(server_conn.take_new_peer_streams(), vec![0, 4]);
    assert_eq!(server_conn.stream_recv(0).0, b"q1");
    assert_eq!(server_conn.stream_recv(4).0, b"q2");
}

#[test]
fn large_stream_data_spans_datagrams() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    let id = c.open_bi();
    let blob: Vec<u8> = (0..10_000u32).map(|i| i as u8).collect();
    c.stream_send(id, &blob, true);
    sh.run(&mut c, SimTime::from_secs(2));
    let server_conn = sh.server.connection(client_addr()).unwrap();
    let (data, fin) = server_conn.stream_recv(id);
    assert_eq!(data, blob);
    assert!(fin);
}

#[test]
fn zero_rtt_query_arrives_with_the_first_flight() {
    let cfg = QuicConfig {
        tls: TlsConfig {
            enable_0rtt: true,
            ..tls("doq")
        },
        ..QuicConfig::default()
    };
    // First connection to obtain an early-data-capable ticket.
    let mut sh0 = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c0 = dial(cfg.clone(), QUIC_V1, None, None);
    sh0.run(&mut c0, SimTime::from_secs(1));
    let ticket = c0.take_tickets().remove(0);
    assert!(ticket.allows_early_data);
    let token = c0.take_new_token();

    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c = dial(cfg, QUIC_V1, Some(ticket), token);
    let id = c.open_bi();
    c.stream_send(id, b"0rtt-query", true);
    // Only the client's first flight.
    let dgrams = c.poll_transmit(SimTime::ZERO);
    let total: usize = dgrams.iter().map(|d| d.len()).sum();
    assert!(total >= 1200);
    for d in &dgrams {
        sh.server.handle_datagram(SimTime::ZERO, client_addr(), d);
    }
    let server_conn = sh.server.connection(client_addr()).unwrap();
    assert_eq!(server_conn.take_new_peer_streams(), vec![0]);
    let (data, fin) = server_conn.stream_recv(0);
    assert_eq!(
        data, b"0rtt-query",
        "query readable before handshake completes"
    );
    assert!(fin);
    assert_eq!(
        c.early_data_accepted(),
        None,
        "client hasn't heard back yet"
    );
    sh.run(&mut c, SimTime::from_secs(1));
    assert_eq!(c.early_data_accepted(), Some(true));
}

#[test]
fn zero_rtt_rejected_replays_in_one_rtt() {
    // Ticket allows early data but this server has 0-RTT disabled
    // (e.g. key rotation): data must still arrive, post-handshake.
    let enable = QuicConfig {
        tls: TlsConfig {
            enable_0rtt: true,
            ..tls("doq")
        },
        ..QuicConfig::default()
    };
    let mut sh0 = Shuttle::new(QuicServer::new(server_addr(), enable.clone()));
    let mut c0 = dial(enable.clone(), QUIC_V1, None, None);
    sh0.run(&mut c0, SimTime::from_secs(1));
    let ticket = c0.take_tickets().remove(0);

    let strict = server_cfg("doq"); // enable_0rtt = false
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), strict));
    let mut c = dial(enable, QUIC_V1, Some(ticket), None);
    let id = c.open_bi();
    c.stream_send(id, b"replayed-query", true);
    sh.run(&mut c, SimTime::from_secs(2));
    assert_eq!(c.early_data_accepted(), Some(false));
    let server_conn = sh.server.connection(client_addr()).unwrap();
    let (data, fin) = server_conn.stream_recv(0);
    assert_eq!(data, b"replayed-query");
    assert!(fin);
}

#[test]
fn lost_client_initial_recovered_by_pto_at_one_second() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    sh.drop_c2s = Some(0); // lose the very first Initial
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(5));
    assert!(c.is_established());
    let t = c.established_at().unwrap();
    // PTO fires at ~1 s, then a normal 1-RTT handshake.
    assert!(t >= SimTime::from_millis(1000), "established at {t}");
    assert!(t <= SimTime::from_millis(1100), "established at {t}");
}

#[test]
fn lost_server_flight_packet_is_retransmitted() {
    // Drop one of the server's certificate datagrams via a lossy run:
    // simpler: drop the client's second datagram (the ACK), PTO covers.
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    sh.drop_c2s = Some(1);
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(6));
    assert!(c.is_established());
    // The query still completes end-to-end afterwards.
    let id = c.open_bi();
    c.stream_send(id, b"q", true);
    sh.run(&mut c, SimTime::from_secs(8));
    let server_conn = sh.server.connection(client_addr()).unwrap();
    assert_eq!(server_conn.stream_recv(0).0, b"q");
}

#[test]
fn connection_close_reaches_peer() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    c.close(0);
    sh.run(&mut c, SimTime::from_secs(2));
    assert!(c.is_closed());
    let server_conn = sh.server.connection(client_addr()).unwrap();
    assert!(server_conn.is_closed());
    assert_eq!(server_conn.error(), Some(&QuicError::PeerClosed(0)));
}

#[test]
fn idle_timeout_closes_the_connection() {
    let cfg = QuicConfig {
        max_idle: Duration::from_secs(3),
        ..server_cfg("doq")
    };
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), cfg.clone()));
    let mut c = dial(cfg, QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    assert!(c.is_established());
    // Let time pass without traffic.
    let _ = c.poll_transmit(SimTime::from_secs(10));
    assert!(c.is_closed());
    assert_eq!(c.error(), Some(&QuicError::IdleTimeout));
}

#[test]
fn no_common_alpn_fails_the_handshake() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("h3"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(2));
    assert!(!c.is_established());
    assert!(c.is_closed());
}

#[test]
fn draft_versions_work_end_to_end() {
    for v in [draft_version(29), draft_version(32), draft_version(34)] {
        let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
        let mut c = dial(server_cfg("doq"), v, None, None);
        sh.run(&mut c, SimTime::from_secs(1));
        assert!(c.is_established(), "version {v:#x}");
        assert_eq!(c.version(), v);
    }
}

#[test]
fn handshake_byte_volume_matches_table1_shape() {
    // Table 1: DoQ handshake C->R 2564, R->C 1304 bytes of IP payload
    // (with Session Resumption). Our UDP payloads should land in the
    // same regime: client dominated by the 1200-byte padded Initial(s),
    // server well under the client volume.
    let (ticket, token) = get_ticket_and_token("doq");
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, Some(ticket), Some(token));
    sh.run(&mut c, SimTime::from_millis(200));
    assert!(c.is_established());
    assert!(
        (1200..3500).contains(&sh.c2s_bytes),
        "client handshake bytes = {}",
        sh.c2s_bytes
    );
    assert!(
        (1200..2100).contains(&sh.s2c_bytes),
        "server handshake bytes = {}",
        sh.s2c_bytes
    );
    assert!(sh.c2s_bytes > sh.s2c_bytes);
}

// ---- connection migration (RFC 9000 §9) ---------------------------------

#[test]
fn connection_survives_client_rebind() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    assert!(c.is_established());
    let id = c.open_bi();
    c.stream_send(id, b"q1", true);
    sh.run(&mut c, SimTime::from_secs(2));
    sh.server
        .connection(client_addr())
        .unwrap()
        .stream_send(0, b"a1", true);
    sh.run(&mut c, SimTime::from_secs(3));
    assert_eq!(c.stream_recv(id).0, b"a1");

    // Wifi -> cellular: the client's source address changes mid-life.
    let new_addr = sa(3, 40001);
    c.rebind(sh.now, new_addr);
    assert!(c.path_probe().is_some(), "client probes the new path");
    let id2 = c.open_bi();
    c.stream_send(id2, b"q2", true);
    sh.run(&mut c, SimTime::from_secs(6));

    // The server rekeyed the connection under the new 4-tuple…
    assert!(sh.server.connection(client_addr()).is_none());
    let server_conn = sh.server.connection(new_addr).expect("migrated");
    // …validated the new path, and the query completed.
    assert_eq!(server_conn.path_probe(), None, "server validation done");
    server_conn.stream_send(id2, b"a2", true);
    sh.run(&mut c, SimTime::from_secs(8));
    assert_eq!(c.stream_recv(id2).0, b"a2");
    assert!(c.error().is_none(), "error: {:?}", c.error());
    assert_eq!(c.path_probe(), None, "client validation done");
    assert!(!c.is_closed());
}

#[test]
fn rebind_with_query_in_flight_recovers_by_retransmission() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    assert!(c.is_established());
    let id = c.open_bi();
    c.stream_send(id, b"in-flight", true);
    // Flush the query onto the wire, then rebind before it is answered.
    for d in c.poll_transmit(sh.now) {
        sh.server.handle_datagram(sh.now, client_addr(), &d);
    }
    c.rebind(sh.now, sa(3, 40001));
    sh.run(&mut c, SimTime::from_secs(6));
    let server_conn = sh.server.connection(sa(3, 40001)).expect("migrated");
    assert_eq!(server_conn.stream_recv(0).0, b"in-flight");
    server_conn.stream_send(0, b"answer", true);
    sh.run(&mut c, SimTime::from_secs(8));
    assert_eq!(c.stream_recv(id).0, b"answer");
    assert!(c.error().is_none(), "error: {:?}", c.error());
}

#[test]
fn unmatched_short_header_datagram_is_dropped_statelessly() {
    let mut server = QuicServer::new(server_addr(), server_cfg("doq"));
    // Short header (0x40), 8-byte CID naming no connection, padding.
    let mut dgram = vec![0x40u8];
    dgram.extend_from_slice(&[9u8; 8]);
    dgram.extend_from_slice(&[0u8; 32]);
    let responses = server.handle_datagram(SimTime::ZERO, client_addr(), &dgram);
    assert!(responses.is_empty());
    assert!(server.is_empty(), "no connection state created");
}

#[test]
fn unreachable_new_path_abandons_validation_and_closes() {
    let mut sh = Shuttle::new(QuicServer::new(server_addr(), server_cfg("doq")));
    let mut c = dial(server_cfg("doq"), QUIC_V1, None, None);
    sh.run(&mut c, SimTime::from_secs(1));
    assert!(c.is_established());
    // Rebind onto a black-holed path: poll the client along its own
    // timeline but deliver nothing in either direction.
    let mut now = sh.now;
    c.rebind(now, sa(3, 40001));
    let mut challenges = 0;
    for _ in 0..64 {
        if c.is_closed() {
            break;
        }
        let dgrams = c.poll_transmit(now);
        challenges += dgrams.len().min(1);
        let Some(next) = c.next_timeout() else { break };
        now = next.max(now);
    }
    assert!(c.is_closed());
    assert_eq!(c.error(), Some(&QuicError::PathValidationFailed));
    assert!(
        challenges >= 2,
        "probe was retransmitted before giving up ({challenges})"
    );
}
