//! The slice of HTTP/3 (RFC 9114) that DoH3 exercises — the paper's §4
//! future work ("we will extend our work with an in-depth comparison
//! to DNS over HTTP/3").
//!
//! Structure follows the RFC: each endpoint opens a unidirectional
//! control stream (stream type 0x00) carrying a SETTINGS frame;
//! requests are client-initiated bidirectional streams carrying
//! HEADERS + DATA frames with varint type/length framing. Header
//! blocks use QPACK with an *empty dynamic table* (required insert
//! count 0) and literal field lines — a legal, minimal QPACK that many
//! early HTTP/3 stacks shipped; it makes DoH3 headers slightly larger
//! than DoH's HPACK after warm-up, which is part of the size
//! comparison the future-work experiment reports.
//!
//! This module is transport-agnostic over "streams": the DoH3 client
//! and server glue it to [`crate::quic::QuicConnection`] streams.

use crate::quic::{read_varint, write_varint};

/// HTTP/3 frame types (RFC 9114 §7.2).
pub const FRAME_DATA: u64 = 0x0;
pub const FRAME_HEADERS: u64 = 0x1;
pub const FRAME_SETTINGS: u64 = 0x4;
pub const FRAME_GOAWAY: u64 = 0x7;

/// Unidirectional stream types (RFC 9114 §6.2).
pub const STREAM_TYPE_CONTROL: u64 = 0x00;

/// One HTTP/3 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H3Frame {
    pub ftype: u64,
    pub payload: Vec<u8>,
}

impl H3Frame {
    pub fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.ftype);
        write_varint(out, self.payload.len() as u64);
        out.extend_from_slice(&self.payload);
    }

    /// Parse one frame from `buf[*pos..]`; `None` if incomplete.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<H3Frame> {
        let start = *pos;
        let Some(ftype) = read_varint(buf, pos) else {
            *pos = start;
            return None;
        };
        let Some(len) = read_varint(buf, pos) else {
            *pos = start;
            return None;
        };
        if *pos + len as usize > buf.len() {
            *pos = start;
            return None;
        }
        let payload = buf[*pos..*pos + len as usize].to_vec();
        *pos += len as usize;
        Some(H3Frame { ftype, payload })
    }
}

/// The control-stream preamble: stream type + SETTINGS.
pub fn control_stream_preamble() -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, STREAM_TYPE_CONTROL);
    // A realistic SETTINGS: QPACK max table capacity 0 (we run without
    // a dynamic table), max field section size, ...
    let mut settings = Vec::new();
    for (id, value) in [(0x01u64, 0u64), (0x06, 65_536), (0x07, 0)] {
        write_varint(&mut settings, id);
        write_varint(&mut settings, value);
    }
    H3Frame {
        ftype: FRAME_SETTINGS,
        payload: settings,
    }
    .encode(&mut out);
    out
}

// ---- QPACK (RFC 9204), empty-dynamic-table subset ------------------------

/// Encode a field section: 2-byte prefix (required insert count 0,
/// base 0) + literal field lines with literal names.
pub fn qpack_encode(headers: &[(&str, &str)]) -> Vec<u8> {
    let mut out = vec![0x00, 0x00]; // RIC = 0, S=0 base = 0
    for (name, value) in headers {
        // Literal field line with literal name (RFC 9204 §4.5.6):
        // 0010 N H=0 + name length (3-bit prefix), then value.
        encode_prefixed_int(&mut out, 0x20, 3, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        encode_prefixed_int(&mut out, 0x00, 7, value.len() as u64);
        out.extend_from_slice(value.as_bytes());
    }
    out
}

/// Decode a field section produced by [`qpack_encode`].
pub fn qpack_decode(block: &[u8]) -> Option<Vec<(String, String)>> {
    if block.len() < 2 {
        return None;
    }
    let mut pos = 2usize; // skip the prefix
    let mut headers = Vec::new();
    while pos < block.len() {
        let first = block[pos];
        if first & 0xE0 != 0x20 {
            return None; // only literal-with-literal-name is emitted
        }
        let name_len = decode_prefixed_int(block, &mut pos, 3)? as usize;
        let name = std::str::from_utf8(block.get(pos..pos + name_len)?).ok()?;
        pos += name_len;
        let value_len = decode_prefixed_int(block, &mut pos, 7)? as usize;
        let value = std::str::from_utf8(block.get(pos..pos + value_len)?).ok()?;
        pos += value_len;
        headers.push((name.to_string(), value.to_string()));
    }
    Some(headers)
}

fn encode_prefixed_int(out: &mut Vec<u8>, first_bits: u8, n: u8, mut value: u64) {
    let max = (1u64 << n) - 1;
    if value < max {
        out.push(first_bits | value as u8);
        return;
    }
    out.push(first_bits | max as u8);
    value -= max;
    while value >= 128 {
        out.push((value % 128) as u8 | 0x80);
        value /= 128;
    }
    out.push(value as u8);
}

fn decode_prefixed_int(buf: &[u8], pos: &mut usize, n: u8) -> Option<u64> {
    let max = (1u64 << n) - 1;
    let first = (*buf.get(*pos)? & max as u8) as u64;
    *pos += 1;
    if first < max {
        return Some(first);
    }
    let mut value = max;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        value += ((b & 0x7F) as u64) << shift;
        shift += 7;
        if b & 0x80 == 0 {
            return Some(value);
        }
        if shift > 56 {
            return None;
        }
    }
}

// ---- request/response stream handling -------------------------------------

/// One assembled HTTP/3 message (request or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H3Message {
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl H3Message {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serialize as HEADERS + DATA stream bytes.
    pub fn encode(&self) -> Vec<u8> {
        let refs: Vec<(&str, &str)> = self
            .headers
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let mut out = Vec::new();
        H3Frame {
            ftype: FRAME_HEADERS,
            payload: qpack_encode(&refs),
        }
        .encode(&mut out);
        if !self.body.is_empty() {
            H3Frame {
                ftype: FRAME_DATA,
                payload: self.body.clone(),
            }
            .encode(&mut out);
        }
        out
    }

    /// Parse the complete stream contents of a request/response stream.
    pub fn decode(stream: &[u8]) -> Option<H3Message> {
        let mut pos = 0usize;
        let mut headers = None;
        let mut body = Vec::new();
        while pos < stream.len() {
            let frame = H3Frame::decode(stream, &mut pos)?;
            match frame.ftype {
                FRAME_HEADERS => headers = Some(qpack_decode(&frame.payload)?),
                FRAME_DATA => body.extend_from_slice(&frame.payload),
                _ => {} // unknown frames are ignored (greasing)
            }
        }
        Some(H3Message {
            headers: headers?,
            body,
        })
    }
}

/// Standard DoH3 request headers (RFC 8484 over HTTP/3).
pub fn doh3_request(authority: &str, body: Vec<u8>) -> H3Message {
    H3Message {
        headers: vec![
            (":method".into(), "POST".into()),
            (":scheme".into(), "https".into()),
            (":authority".into(), authority.into()),
            (":path".into(), "/dns-query".into()),
            ("accept".into(), "application/dns-message".into()),
            ("content-type".into(), "application/dns-message".into()),
            ("content-length".into(), body.len().to_string()),
        ],
        body,
    }
}

/// Standard DoH3 response.
pub fn doh3_response(body: Vec<u8>) -> H3Message {
    H3Message {
        headers: vec![
            (":status".into(), "200".into()),
            ("content-type".into(), "application/dns-message".into()),
            ("content-length".into(), body.len().to_string()),
        ],
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = H3Frame {
            ftype: FRAME_HEADERS,
            payload: vec![1, 2, 3],
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(H3Frame::decode(&buf, &mut pos), Some(f));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn incomplete_frames_rewind() {
        let f = H3Frame {
            ftype: FRAME_DATA,
            payload: vec![9; 50],
        };
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in [0, 1, 10, buf.len() - 1] {
            let mut pos = 0;
            assert_eq!(H3Frame::decode(&buf[..cut], &mut pos), None);
            assert_eq!(pos, 0, "decoder must rewind on incomplete input");
        }
    }

    #[test]
    fn qpack_roundtrip() {
        let headers = [
            (":method", "POST"),
            ("content-type", "application/dns-message"),
        ];
        let block = qpack_encode(&headers);
        assert_eq!(block[0], 0, "required insert count 0");
        let out = qpack_decode(&block).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], (":method".to_string(), "POST".to_string()));
    }

    #[test]
    fn qpack_rejects_garbage() {
        assert!(qpack_decode(&[0, 0, 0xFF, 1, 2]).is_none());
        assert!(qpack_decode(&[0]).is_none());
    }

    #[test]
    fn message_roundtrip() {
        let req = doh3_request("dns.example", b"querybytes".to_vec());
        let wire = req.encode();
        let back = H3Message::decode(&wire).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.header(":path"), Some("/dns-query"));
        assert_eq!(back.body, b"querybytes");
    }

    #[test]
    fn response_roundtrip() {
        let resp = doh3_response(vec![7; 63]);
        let back = H3Message::decode(&resp.encode()).unwrap();
        assert_eq!(back.header(":status"), Some("200"));
        assert_eq!(back.body.len(), 63);
    }

    #[test]
    fn control_preamble_shape() {
        let pre = control_stream_preamble();
        assert_eq!(pre[0], 0x00, "control stream type");
        let mut pos = 1;
        let settings = H3Frame::decode(&pre, &mut pos).unwrap();
        assert_eq!(settings.ftype, FRAME_SETTINGS);
        assert!(!settings.payload.is_empty());
    }

    #[test]
    fn prefixed_int_boundaries() {
        for v in [0u64, 6, 7, 8, 300, 100_000] {
            let mut out = Vec::new();
            encode_prefixed_int(&mut out, 0x20, 3, v);
            let mut pos = 0;
            assert_eq!(decode_prefixed_int(&out, &mut pos, 3), Some(v));
        }
    }
}
