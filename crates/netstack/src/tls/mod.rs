//! TLS 1.3 / 1.2 handshake state machines.
//!
//! What matters for the paper — and therefore what is implemented — is
//! the *round-trip and byte* behaviour of TLS: how many flights each
//! version needs, how large each flight is, how session resumption
//! removes the certificate exchange, and how 0-RTT lets a client attach
//! application data to its first flight. Key schedules and AEAD
//! computations are replaced by their byte-size overhead (see
//! DESIGN.md): records that would be encrypted carry a 16-byte tag plus
//! the TLS 1.3 inner content-type byte.
//!
//! The same handshake-message model is embedded by [`crate::quic`] in
//! CRYPTO frames, exactly like real QUIC embeds TLS 1.3.

mod engine;
mod messages;
mod session;

pub use engine::{TlsClient, TlsConfig, TlsError, TlsServer};
pub use messages::{HandshakeMessage, HandshakePayload, TlsRecord, TlsVersion, RECORD_OVERHEAD};
pub use session::SessionTicket;
