//! TLS handshake messages and the record layer.
//!
//! Handshake messages use the real TLS framing — a 1-byte type and a
//! 24-bit length — but their bodies are a structured simulation payload
//! padded to the byte sizes a real implementation produces (a
//! ClientHello with a PSK extension is ~380 bytes, a certificate chain
//! ~2.4 KB, ...). This keeps every size-sensitive behaviour honest: the
//! QUIC amplification limit, Table 1's byte accounting, and TCP
//! segmentation of the certificate flight.

use crate::tls::session::SessionTicket;
#[cfg(test)]
use doqlab_simnet::Duration;
#[cfg(test)]
use doqlab_simnet::SimTime;

/// Negotiable protocol versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsVersion {
    Tls12,
    Tls13,
}

impl TlsVersion {
    pub fn wire(self) -> u16 {
        match self {
            TlsVersion::Tls12 => 0x0303,
            TlsVersion::Tls13 => 0x0304,
        }
    }

    pub fn from_wire(v: u16) -> Option<Self> {
        match v {
            0x0303 => Some(TlsVersion::Tls12),
            0x0304 => Some(TlsVersion::Tls13),
            _ => None,
        }
    }
}

/// Byte overhead of an "encrypted" record beyond its plaintext: the
/// TLS 1.3 inner content-type byte plus a 16-byte AEAD tag.
pub const RECORD_OVERHEAD: usize = 17;

/// Maximum plaintext per record (RFC 8446 §5.1: 2^14 bytes).
pub const MAX_RECORD_PLAINTEXT: usize = 16_384;

/// Record-layer content types.
const CT_CHANGE_CIPHER_SPEC: u8 = 20;
const CT_ALERT: u8 = 21;
const CT_HANDSHAKE: u8 = 22;
const CT_APPLICATION_DATA: u8 = 23;

/// A record-layer record. `Encrypted` wraps an inner content type and
/// carries the AEAD overhead on the wire (outer type 23), mirroring how
/// TLS 1.3 protects everything after the ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsRecord {
    PlainHandshake(Vec<u8>),
    ChangeCipherSpec,
    Alert {
        fatal: bool,
        code: u8,
    },
    /// Encrypted content: (inner content type, plaintext bytes).
    Encrypted {
        inner_type: u8,
        plaintext: Vec<u8>,
    },
}

impl TlsRecord {
    pub fn encrypted_handshake(plaintext: Vec<u8>) -> TlsRecord {
        TlsRecord::Encrypted {
            inner_type: CT_HANDSHAKE,
            plaintext,
        }
    }

    pub fn app_data(plaintext: Vec<u8>) -> TlsRecord {
        TlsRecord::Encrypted {
            inner_type: CT_APPLICATION_DATA,
            plaintext,
        }
    }

    /// Serialize with the 5-byte record header.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (ctype, payload): (u8, Vec<u8>) = match self {
            TlsRecord::PlainHandshake(p) => (CT_HANDSHAKE, p.clone()),
            TlsRecord::ChangeCipherSpec => (CT_CHANGE_CIPHER_SPEC, vec![1]),
            TlsRecord::Alert { fatal, code } => (CT_ALERT, vec![if *fatal { 2 } else { 1 }, *code]),
            TlsRecord::Encrypted {
                inner_type,
                plaintext,
            } => {
                let mut p = plaintext.clone();
                p.push(*inner_type);
                p.extend_from_slice(&[0u8; RECORD_OVERHEAD - 1]); // AEAD tag
                (CT_APPLICATION_DATA, p)
            }
        };
        assert!(
            payload.len() <= MAX_RECORD_PLAINTEXT + RECORD_OVERHEAD,
            "record exceeds RFC 8446 size limit; chunk before encoding"
        );
        out.push(ctype);
        out.extend_from_slice(&0x0303u16.to_be_bytes()); // legacy version
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&payload);
    }

    /// Parse one record from the front of `buf`; returns the record and
    /// bytes consumed, or `None` if incomplete.
    pub fn decode(buf: &[u8]) -> Option<(TlsRecord, usize)> {
        if buf.len() < 5 {
            return None;
        }
        let ctype = buf[0];
        let len = u16::from_be_bytes([buf[3], buf[4]]) as usize;
        if buf.len() < 5 + len {
            return None;
        }
        let payload = &buf[5..5 + len];
        let rec = match ctype {
            CT_HANDSHAKE => TlsRecord::PlainHandshake(payload.to_vec()),
            CT_CHANGE_CIPHER_SPEC => TlsRecord::ChangeCipherSpec,
            CT_ALERT => TlsRecord::Alert {
                fatal: payload.first() == Some(&2),
                code: payload.get(1).copied().unwrap_or(0),
            },
            CT_APPLICATION_DATA => {
                if payload.len() < RECORD_OVERHEAD {
                    return None;
                }
                let plaintext_end = payload.len() - RECORD_OVERHEAD;
                TlsRecord::Encrypted {
                    inner_type: payload[plaintext_end],
                    plaintext: payload[..plaintext_end].to_vec(),
                }
            }
            _ => return None,
        };
        Some((rec, 5 + len))
    }
}

/// Typed handshake payloads. Sizes are controlled by per-message
/// padding so the wire image matches real TLS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakePayload {
    ClientHello {
        /// Versions the client offers, most preferred first.
        versions: Vec<TlsVersion>,
        alpn: Vec<Vec<u8>>,
        /// Resumption ticket (the PSK extension).
        psk: Option<SessionTicket>,
        /// The client intends to send 0-RTT data under the PSK.
        early_data: bool,
        /// Extra bytes modelling additional extensions (QUIC transport
        /// parameters when carried over QUIC, SNI length, ...).
        pad: u16,
    },
    ServerHello {
        version: TlsVersion,
        /// Echoed in TLS 1.2 abbreviated handshakes.
        resumed: bool,
    },
    EncryptedExtensions {
        alpn: Option<Vec<u8>>,
        early_data_accepted: bool,
    },
    Certificate {
        chain_len: u16,
    },
    CertificateVerify,
    Finished,
    NewSessionTicket {
        ticket: SessionTicket,
    },
    /// TLS 1.2 only.
    ServerHelloDone,
    /// TLS 1.2 only.
    ClientKeyExchange,
}

/// Handshake message type codes (RFC 8446 §4 / RFC 5246 §7.4).
impl HandshakePayload {
    fn type_code(&self) -> u8 {
        match self {
            HandshakePayload::ClientHello { .. } => 1,
            HandshakePayload::ServerHello { .. } => 2,
            HandshakePayload::NewSessionTicket { .. } => 4,
            HandshakePayload::EncryptedExtensions { .. } => 8,
            HandshakePayload::Certificate { .. } => 11,
            HandshakePayload::ServerHelloDone => 14,
            HandshakePayload::ClientKeyExchange => 16,
            HandshakePayload::CertificateVerify => 15,
            HandshakePayload::Finished => 20,
        }
    }

    /// Bytes a real implementation would need for this message beyond
    /// our structural encoding; appended as padding.
    fn size_model(&self) -> usize {
        match self {
            // random + cipher suites + key_share + SNI + misc exts.
            HandshakePayload::ClientHello { psk, pad, .. } => {
                200 + *pad as usize + if psk.is_some() { 110 } else { 0 }
            }
            // random + key_share.
            HandshakePayload::ServerHello { .. } => 76,
            HandshakePayload::EncryptedExtensions { .. } => 6,
            HandshakePayload::Certificate { chain_len } => *chain_len as usize,
            HandshakePayload::CertificateVerify => 260,
            HandshakePayload::Finished => 32,
            HandshakePayload::NewSessionTicket { .. } => 30,
            HandshakePayload::ServerHelloDone => 0,
            HandshakePayload::ClientKeyExchange => 66,
        }
    }
}

/// A framed handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeMessage {
    pub payload: HandshakePayload,
}

impl HandshakeMessage {
    pub fn new(payload: HandshakePayload) -> Self {
        HandshakeMessage { payload }
    }

    /// Encode: 1-byte type, 24-bit length, structured body + padding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        let pad = self.payload.size_model();
        body.extend(std::iter::repeat_n(0u8, pad));
        out.push(self.payload.type_code());
        let len = body.len() as u32;
        out.extend_from_slice(&len.to_be_bytes()[1..]);
        out.extend_from_slice(&body);
    }

    fn encode_body(&self, b: &mut Vec<u8>) {
        fn put_bytes(b: &mut Vec<u8>, s: &[u8]) {
            b.extend_from_slice(&(s.len() as u16).to_be_bytes());
            b.extend_from_slice(s);
        }
        match &self.payload {
            HandshakePayload::ClientHello {
                versions,
                alpn,
                psk,
                early_data,
                pad,
            } => {
                b.push(versions.len() as u8);
                for v in versions {
                    b.extend_from_slice(&v.wire().to_be_bytes());
                }
                b.push(alpn.len() as u8);
                for a in alpn {
                    put_bytes(b, a);
                }
                match psk {
                    None => b.push(0),
                    Some(t) => {
                        b.push(1);
                        let enc = t.encode();
                        put_bytes(b, &enc);
                    }
                }
                b.push(*early_data as u8);
                b.extend_from_slice(&pad.to_be_bytes());
            }
            HandshakePayload::ServerHello { version, resumed } => {
                b.extend_from_slice(&version.wire().to_be_bytes());
                b.push(*resumed as u8);
            }
            HandshakePayload::EncryptedExtensions {
                alpn,
                early_data_accepted,
            } => {
                match alpn {
                    None => b.push(0),
                    Some(a) => {
                        b.push(1);
                        put_bytes(b, a);
                    }
                }
                b.push(*early_data_accepted as u8);
            }
            HandshakePayload::Certificate { chain_len } => {
                b.extend_from_slice(&chain_len.to_be_bytes());
            }
            HandshakePayload::NewSessionTicket { ticket } => {
                let enc = ticket.encode();
                put_bytes(b, &enc);
            }
            HandshakePayload::CertificateVerify
            | HandshakePayload::Finished
            | HandshakePayload::ServerHelloDone
            | HandshakePayload::ClientKeyExchange => {}
        }
    }

    /// Parse one message from the front of `buf`; `None` if incomplete.
    pub fn decode(buf: &[u8]) -> Option<(HandshakeMessage, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let typ = buf[0];
        let len = u32::from_be_bytes([0, buf[1], buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return None;
        }
        let body = &buf[4..4 + len];
        let payload = Self::decode_body(typ, body)?;
        Some((HandshakeMessage { payload }, 4 + len))
    }

    fn decode_body(typ: u8, b: &[u8]) -> Option<HandshakePayload> {
        struct R<'a>(&'a [u8], usize);
        impl<'a> R<'a> {
            fn u8(&mut self) -> Option<u8> {
                let v = *self.0.get(self.1)?;
                self.1 += 1;
                Some(v)
            }
            fn u16(&mut self) -> Option<u16> {
                let v = u16::from_be_bytes([*self.0.get(self.1)?, *self.0.get(self.1 + 1)?]);
                self.1 += 2;
                Some(v)
            }
            fn bytes(&mut self) -> Option<Vec<u8>> {
                let len = self.u16()? as usize;
                if self.1 + len > self.0.len() {
                    return None;
                }
                let v = self.0[self.1..self.1 + len].to_vec();
                self.1 += len;
                Some(v)
            }
        }
        let mut r = R(b, 0);
        Some(match typ {
            1 => {
                let nv = r.u8()? as usize;
                let mut versions = Vec::new();
                for _ in 0..nv {
                    versions.push(TlsVersion::from_wire(r.u16()?)?);
                }
                let na = r.u8()? as usize;
                let mut alpn = Vec::new();
                for _ in 0..na {
                    alpn.push(r.bytes()?);
                }
                let psk = if r.u8()? == 1 {
                    Some(SessionTicket::decode(&r.bytes()?)?)
                } else {
                    None
                };
                let early_data = r.u8()? == 1;
                let pad = r.u16()?;
                HandshakePayload::ClientHello {
                    versions,
                    alpn,
                    psk,
                    early_data,
                    pad,
                }
            }
            2 => HandshakePayload::ServerHello {
                version: TlsVersion::from_wire(r.u16()?)?,
                resumed: r.u8()? == 1,
            },
            4 => HandshakePayload::NewSessionTicket {
                ticket: SessionTicket::decode(&r.bytes()?)?,
            },
            8 => {
                let alpn = if r.u8()? == 1 { Some(r.bytes()?) } else { None };
                HandshakePayload::EncryptedExtensions {
                    alpn,
                    early_data_accepted: r.u8()? == 1,
                }
            }
            11 => HandshakePayload::Certificate {
                chain_len: r.u16()?,
            },
            14 => HandshakePayload::ServerHelloDone,
            15 => HandshakePayload::CertificateVerify,
            16 => HandshakePayload::ClientKeyExchange,
            20 => HandshakePayload::Finished,
            _ => return None,
        })
    }
}

/// Incremental parser for a stream of handshake messages (used for
/// CRYPTO-frame reassembly in QUIC and record payloads in TLS).
#[derive(Debug, Default)]
pub struct HandshakeReader {
    buf: Vec<u8>,
}

impl HandshakeReader {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    pub fn next_message(&mut self) -> Option<HandshakeMessage> {
        let (msg, used) = HandshakeMessage::decode(&self.buf)?;
        self.buf.drain(..used);
        Some(msg)
    }
}

/// Convenience: standard ticket for tests in this module tree.
#[cfg(test)]
pub fn test_ticket(now: SimTime) -> SessionTicket {
    SessionTicket {
        server_id: 42,
        version: TlsVersion::Tls13,
        alpn: b"doq".to_vec(),
        issued_at: now,
        lifetime: Duration::from_secs(7 * 24 * 3600),
        allows_early_data: false,
        opaque_len: 120,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: HandshakeMessage) -> HandshakeMessage {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let (out, used) = HandshakeMessage::decode(&buf).expect("decodes");
        assert_eq!(used, buf.len());
        out
    }

    #[test]
    fn client_hello_roundtrip_and_size() {
        let ch = HandshakeMessage::new(HandshakePayload::ClientHello {
            versions: vec![TlsVersion::Tls13, TlsVersion::Tls12],
            alpn: vec![b"dot".to_vec()],
            psk: None,
            early_data: false,
            pad: 0,
        });
        assert_eq!(roundtrip(ch.clone()), ch);
        let mut buf = Vec::new();
        ch.encode(&mut buf);
        // A full ClientHello should be in the 200-300 byte range.
        assert!((200..320).contains(&buf.len()), "CH = {}", buf.len());
    }

    #[test]
    fn psk_client_hello_is_bigger() {
        let plain = HandshakeMessage::new(HandshakePayload::ClientHello {
            versions: vec![TlsVersion::Tls13],
            alpn: vec![b"dot".to_vec()],
            psk: None,
            early_data: false,
            pad: 0,
        });
        let psk = HandshakeMessage::new(HandshakePayload::ClientHello {
            versions: vec![TlsVersion::Tls13],
            alpn: vec![b"dot".to_vec()],
            psk: Some(test_ticket(SimTime::ZERO)),
            early_data: true,
            pad: 0,
        });
        let len = |m: &HandshakeMessage| {
            let mut b = Vec::new();
            m.encode(&mut b);
            b.len()
        };
        assert!(
            len(&psk) > len(&plain) + 150,
            "{} vs {}",
            len(&psk),
            len(&plain)
        );
        assert_eq!(roundtrip(psk.clone()), psk);
    }

    #[test]
    fn certificate_size_follows_chain_len() {
        let cert = HandshakeMessage::new(HandshakePayload::Certificate { chain_len: 2400 });
        let mut buf = Vec::new();
        cert.encode(&mut buf);
        assert!(buf.len() >= 2400);
        assert!(buf.len() < 2450);
        assert_eq!(roundtrip(cert.clone()), cert);
    }

    #[test]
    fn all_message_types_roundtrip() {
        let msgs = vec![
            HandshakePayload::ServerHello {
                version: TlsVersion::Tls13,
                resumed: true,
            },
            HandshakePayload::EncryptedExtensions {
                alpn: Some(b"h2".to_vec()),
                early_data_accepted: true,
            },
            HandshakePayload::CertificateVerify,
            HandshakePayload::Finished,
            HandshakePayload::NewSessionTicket {
                ticket: test_ticket(SimTime::ZERO),
            },
            HandshakePayload::ServerHelloDone,
            HandshakePayload::ClientKeyExchange,
        ];
        for p in msgs {
            let m = HandshakeMessage::new(p);
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn record_roundtrip_plain_and_encrypted() {
        for rec in [
            TlsRecord::PlainHandshake(vec![1, 2, 3]),
            TlsRecord::ChangeCipherSpec,
            TlsRecord::Alert {
                fatal: true,
                code: 40,
            },
            TlsRecord::encrypted_handshake(vec![9; 50]),
            TlsRecord::app_data(b"dns".to_vec()),
        ] {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            let (out, used) = TlsRecord::decode(&buf).expect("decodes");
            assert_eq!(used, buf.len());
            assert_eq!(out, rec);
        }
    }

    #[test]
    fn encrypted_record_carries_aead_overhead() {
        let rec = TlsRecord::app_data(vec![0; 100]);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), 5 + 100 + RECORD_OVERHEAD);
    }

    #[test]
    fn record_decode_incomplete_returns_none() {
        let rec = TlsRecord::app_data(vec![0; 100]);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        for cut in [0, 3, 50, buf.len() - 1] {
            assert!(TlsRecord::decode(&buf[..cut]).is_none(), "cut = {cut}");
        }
    }

    #[test]
    fn handshake_reader_reassembles_split_messages() {
        let mut wire = Vec::new();
        HandshakeMessage::new(HandshakePayload::Finished).encode(&mut wire);
        HandshakeMessage::new(HandshakePayload::ServerHelloDone).encode(&mut wire);
        let mut reader = HandshakeReader::new();
        let mid = wire.len() / 2;
        reader.push(&wire[..mid]);
        let first = reader.next_message();
        reader.push(&wire[mid..]);
        let mut got = Vec::new();
        if let Some(m) = first {
            got.push(m);
        }
        while let Some(m) = reader.next_message() {
            got.push(m);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].payload, HandshakePayload::Finished);
        assert_eq!(got[1].payload, HandshakePayload::ServerHelloDone);
    }

    #[test]
    fn garbage_decodes_to_none_not_panic() {
        assert!(HandshakeMessage::decode(&[255, 0, 0, 1, 7]).is_none());
        assert!(TlsRecord::decode(&[99, 3, 3, 0, 1, 0]).is_none());
    }
}
