//! Session tickets (RFC 8446 §4.6.1).
//!
//! Every resolver the paper measured supported Session Resumption and
//! issued tickets with the maximum 7-day lifetime; none accepted 0-RTT.
//! Tickets here carry the issuing server's identity (standing in for
//! the ticket-encryption key check a real server performs), the
//! negotiated version/ALPN, and an opaque length that models the real
//! ticket blob for size accounting.

use crate::tls::messages::TlsVersion;
use doqlab_simnet::{Duration, SimTime};

/// The RFC 8446 maximum (and the value every measured resolver used).
pub const MAX_TICKET_LIFETIME: Duration = Duration::from_secs(7 * 24 * 3600);

/// A resumption ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Identity of the issuing server; a server only accepts its own
    /// tickets (standing in for the ticket key).
    pub server_id: u64,
    pub version: TlsVersion,
    /// ALPN the original session negotiated; resumption must match.
    pub alpn: Vec<u8>,
    pub issued_at: SimTime,
    pub lifetime: Duration,
    /// Whether the server permits 0-RTT under this ticket
    /// (max_early_data_size > 0).
    pub allows_early_data: bool,
    /// Size of the opaque ticket blob on the wire.
    pub opaque_len: u16,
}

impl SessionTicket {
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        now < self.issued_at + self.lifetime
    }

    /// Serialize (fields + opaque blob).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&self.server_id.to_be_bytes());
        b.extend_from_slice(&self.version.wire().to_be_bytes());
        b.extend_from_slice(&(self.alpn.len() as u16).to_be_bytes());
        b.extend_from_slice(&self.alpn);
        b.extend_from_slice(&self.issued_at.as_nanos().to_be_bytes());
        b.extend_from_slice(&(self.lifetime.as_secs()).to_be_bytes());
        b.push(self.allows_early_data as u8);
        b.extend_from_slice(&self.opaque_len.to_be_bytes());
        b.extend(std::iter::repeat_n(0u8, self.opaque_len as usize));
        b
    }

    pub fn decode(b: &[u8]) -> Option<SessionTicket> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if *pos + n > b.len() {
                return None;
            }
            let s = &b[*pos..*pos + n];
            *pos += n;
            Some(s)
        };
        let server_id = u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let version =
            TlsVersion::from_wire(u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?))?;
        let alpn_len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let alpn = take(&mut pos, alpn_len)?.to_vec();
        let issued_at =
            SimTime::from_nanos(u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?));
        let lifetime = Duration::from_secs(u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?));
        let allows_early_data = take(&mut pos, 1)?[0] == 1;
        let opaque_len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
        take(&mut pos, opaque_len as usize)?;
        Some(SessionTicket {
            server_id,
            version,
            alpn,
            issued_at,
            lifetime,
            allows_early_data,
            opaque_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket() -> SessionTicket {
        SessionTicket {
            server_id: 7,
            version: TlsVersion::Tls13,
            alpn: b"doq".to_vec(),
            issued_at: SimTime::from_secs(100),
            lifetime: MAX_TICKET_LIFETIME,
            allows_early_data: true,
            opaque_len: 120,
        }
    }

    #[test]
    fn roundtrip() {
        let t = ticket();
        assert_eq!(SessionTicket::decode(&t.encode()), Some(t));
    }

    #[test]
    fn validity_window() {
        let t = ticket();
        assert!(!t.is_valid_at(SimTime::from_secs(100) + MAX_TICKET_LIFETIME));
        assert!(t.is_valid_at(SimTime::from_secs(100)));
        assert!(
            t.is_valid_at(SimTime::from_secs(100) + MAX_TICKET_LIFETIME - Duration::from_secs(1))
        );
    }

    #[test]
    fn encoded_size_includes_opaque_blob() {
        let t = ticket();
        assert!(t.encode().len() > 120);
    }

    #[test]
    fn truncated_decode_fails() {
        let enc = ticket().encode();
        assert!(SessionTicket::decode(&enc[..enc.len() - 1]).is_none());
        assert!(SessionTicket::decode(&[]).is_none());
    }
}
