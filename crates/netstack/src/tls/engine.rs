//! The TLS client and server state machines.
//!
//! Transport-agnostic: callers feed received bytes with `read_wire` and
//! drain bytes to transmit with `take_output`. Over TCP the bytes are
//! written into a [`crate::tcp::TcpSocket`]; QUIC instead embeds the
//! handshake *messages* (not records) in CRYPTO frames via
//! [`crate::tls::messages::HandshakeReader`].
//!
//! Flights implemented:
//!
//! * TLS 1.3 full: CH -> SH, EE, Cert, CV, Fin -> Fin           (1 RTT)
//! * TLS 1.3 resumption (PSK): CH -> SH, EE, Fin -> Fin         (1 RTT,
//!   no certificate — this is what keeps DoQ under the QUIC
//!   amplification limit in the paper's measurements)
//! * TLS 1.3 0-RTT: CH + early data -> ... (accepted or replayed)
//! * TLS 1.2 full: CH -> SH, Cert, SHD -> CKE, CCS, Fin -> CCS, Fin
//!   (2 RTT)
//! * TLS 1.2 abbreviated: CH -> SH, CCS, Fin -> CCS, Fin        (1 RTT)
//!
//! Servers issue NewSessionTicket after the handshake (7-day lifetime,
//! like every resolver the paper measured).

use crate::tls::messages::{
    HandshakeMessage, HandshakePayload, HandshakeReader, TlsRecord, TlsVersion,
};
use crate::tls::session::SessionTicket;
use doqlab_simnet::{Duration, SimTime};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};

/// Shared client/server configuration.
#[derive(Debug, Clone)]
pub struct TlsConfig {
    /// Server identity for ticket validation (servers only).
    pub server_id: u64,
    /// Supported versions, most preferred first.
    pub versions: Vec<TlsVersion>,
    /// ALPN: offered (client) / supported (server).
    pub alpn: Vec<Vec<u8>>,
    /// Certificate chain size on the wire (servers only).
    pub cert_chain_len: u16,
    /// Accept / request 0-RTT early data.
    pub enable_0rtt: bool,
    /// Lifetime of issued tickets (servers only).
    pub ticket_lifetime: Duration,
    /// Extra ClientHello padding (e.g. QUIC transport parameters).
    pub extra_client_hello_pad: u16,
}

impl Default for TlsConfig {
    fn default() -> Self {
        TlsConfig {
            server_id: 0,
            versions: vec![TlsVersion::Tls13, TlsVersion::Tls12],
            alpn: Vec::new(),
            cert_chain_len: 2400,
            enable_0rtt: false,
            ticket_lifetime: crate::tls::session::MAX_TICKET_LIFETIME,
            extra_client_hello_pad: 0,
        }
    }
}

/// Fatal handshake failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    NoCommonVersion,
    NoCommonAlpn,
    UnexpectedMessage(&'static str),
    PeerAlert(u8),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::NoCommonVersion => write!(f, "no common TLS version"),
            TlsError::NoCommonAlpn => write!(f, "no common ALPN protocol"),
            TlsError::UnexpectedMessage(m) => write!(f, "unexpected message: {m}"),
            TlsError::PeerAlert(c) => write!(f, "peer sent fatal alert {c}"),
        }
    }
}

impl std::error::Error for TlsError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    WaitServerHello,
    /// TLS 1.3: waiting for EE/Cert/CV/Finished.
    WaitServerFlight13,
    /// TLS 1.2 full: waiting for Certificate / ServerHelloDone.
    WaitServerFlight12,
    /// TLS 1.2: waiting for the server Finished.
    WaitServerFinished12,
    Connected,
    Failed,
}

/// Client endpoint.
#[derive(Debug)]
pub struct TlsClient {
    cfg: TlsConfig,
    state: ClientState,
    ticket: Option<SessionTicket>,
    out: Vec<u8>,
    hs_in: HandshakeReader,
    rec_buf: Vec<u8>,
    app_rx: Vec<u8>,
    app_tx_pending: Vec<u8>,
    early_sent: Vec<u8>,
    attempted_early: bool,
    early_accepted: Option<bool>,
    version: Option<TlsVersion>,
    alpn: Option<Vec<u8>>,
    tickets: Vec<SessionTicket>,
    connected_at: Option<SimTime>,
    error: Option<TlsError>,
    resumed_12: bool,
    resumed_13: bool,
    seen_ee: bool,
}

impl TlsClient {
    pub fn new(cfg: TlsConfig, ticket: Option<SessionTicket>) -> Self {
        TlsClient {
            cfg,
            state: ClientState::Start,
            ticket,
            out: Vec::new(),
            hs_in: HandshakeReader::new(),
            rec_buf: Vec::new(),
            app_rx: Vec::new(),
            app_tx_pending: Vec::new(),
            early_sent: Vec::new(),
            attempted_early: false,
            early_accepted: None,
            version: None,
            alpn: None,
            tickets: Vec::new(),
            connected_at: None,
            error: None,
            resumed_12: false,
            resumed_13: false,
            seen_ee: false,
        }
    }

    fn send_handshake(&mut self, plaintext_epoch: bool, payload: HandshakePayload) {
        let mut body = Vec::new();
        HandshakeMessage::new(payload).encode(&mut body);
        let rec = if plaintext_epoch {
            TlsRecord::PlainHandshake(body)
        } else {
            TlsRecord::encrypted_handshake(body)
        };
        rec.encode(&mut self.out);
    }

    /// Begin the handshake: emits the ClientHello (plus 0-RTT data if
    /// queued, permitted, and the ticket allows it).
    pub fn start(&mut self, now: SimTime) {
        assert_eq!(self.state, ClientState::Start, "start() twice");
        let psk = self
            .ticket
            .clone()
            .filter(|t| t.is_valid_at(now) && self.cfg.versions.contains(&t.version));
        let early_data = self.cfg.enable_0rtt
            && psk.as_ref().is_some_and(|t| t.allows_early_data)
            && !self.app_tx_pending.is_empty();
        self.attempted_early = early_data;
        self.send_handshake(
            true,
            HandshakePayload::ClientHello {
                versions: self.cfg.versions.clone(),
                alpn: self.cfg.alpn.clone(),
                psk,
                early_data,
                pad: self.cfg.extra_client_hello_pad,
            },
        );
        if early_data {
            let data = std::mem::take(&mut self.app_tx_pending);
            for chunk in data.chunks(crate::tls::messages::MAX_RECORD_PLAINTEXT) {
                TlsRecord::app_data(chunk.to_vec()).encode(&mut self.out);
            }
            self.early_sent = data;
        }
        let flight_len = self.out.len();
        sink::emit(now.as_nanos(), || Event::TlsFlightSent {
            flight: "client_hello",
            bytes: flight_len,
        });
        self.state = ClientState::WaitServerHello;
    }

    /// Feed bytes received from the transport.
    pub fn read_wire(&mut self, now: SimTime, data: &[u8]) {
        if self.state == ClientState::Failed {
            return;
        }
        self.rec_buf.extend_from_slice(data);
        while let Some((rec, used)) = TlsRecord::decode(&self.rec_buf) {
            self.rec_buf.drain(..used);
            self.on_record(now, rec);
            if self.state == ClientState::Failed {
                return;
            }
        }
    }

    fn on_record(&mut self, now: SimTime, rec: TlsRecord) {
        match rec {
            TlsRecord::Alert { fatal, code } => {
                if fatal {
                    self.error.get_or_insert(TlsError::PeerAlert(code));
                    self.state = ClientState::Failed;
                }
            }
            TlsRecord::ChangeCipherSpec => {}
            TlsRecord::PlainHandshake(bytes)
            | TlsRecord::Encrypted {
                inner_type: 22,
                plaintext: bytes,
            } => {
                self.hs_in.push(&bytes);
                while let Some(msg) = self.hs_in.next_message() {
                    self.on_handshake(now, msg);
                    if self.state == ClientState::Failed {
                        return;
                    }
                }
            }
            TlsRecord::Encrypted {
                inner_type: 23,
                plaintext,
            } => {
                self.app_rx.extend_from_slice(&plaintext);
            }
            TlsRecord::Encrypted { .. } => {}
        }
    }

    fn on_handshake(&mut self, now: SimTime, msg: HandshakeMessage) {
        match (self.state, msg.payload) {
            (ClientState::WaitServerHello, HandshakePayload::ServerHello { version, resumed }) => {
                self.version = Some(version);
                match version {
                    TlsVersion::Tls13 => {
                        self.resumed_13 = resumed;
                        self.state = ClientState::WaitServerFlight13;
                    }
                    TlsVersion::Tls12 => {
                        self.resumed_12 = resumed;
                        if self.attempted_early {
                            // A 1.2 server never reads 0-RTT records:
                            // treat the downgrade as a rejection and
                            // re-queue the early data for the
                            // post-handshake flight.
                            self.early_accepted = Some(false);
                            sink::emit(now.as_nanos(), || Event::TlsEarlyData { accepted: false });
                            metrics::count(Counter::TlsEarlyDataRejected, 1);
                            let replay = std::mem::take(&mut self.early_sent);
                            self.app_tx_pending.splice(0..0, replay);
                        }
                        // 1.2 has no EE; a plain-1.2 server ignores the
                        // offered ALPN extension detail — assume first
                        // offered protocol.
                        self.alpn = self.cfg.alpn.first().cloned();
                        if resumed {
                            self.state = ClientState::WaitServerFinished12;
                        } else {
                            self.state = ClientState::WaitServerFlight12;
                        }
                    }
                }
            }
            (
                ClientState::WaitServerFlight13,
                HandshakePayload::EncryptedExtensions {
                    alpn,
                    early_data_accepted,
                },
            ) => {
                self.alpn = alpn;
                self.seen_ee = true;
                if self.attempted_early {
                    self.early_accepted = Some(early_data_accepted);
                    sink::emit(now.as_nanos(), || Event::TlsEarlyData {
                        accepted: early_data_accepted,
                    });
                    metrics::count(
                        if early_data_accepted {
                            Counter::TlsEarlyDataAccepted
                        } else {
                            Counter::TlsEarlyDataRejected
                        },
                        1,
                    );
                    if !early_data_accepted {
                        // Rejected: re-queue for after the handshake.
                        let replay = std::mem::take(&mut self.early_sent);
                        self.app_tx_pending.splice(0..0, replay);
                    }
                }
            }
            (ClientState::WaitServerFlight13, HandshakePayload::Certificate { .. })
            | (ClientState::WaitServerFlight13, HandshakePayload::CertificateVerify) => {}
            (ClientState::WaitServerFlight13, HandshakePayload::Finished) => {
                if !self.seen_ee {
                    return self.fail(TlsError::UnexpectedMessage("Finished before EE"));
                }
                let before = self.out.len();
                self.send_handshake(false, HandshakePayload::Finished);
                let flight_len = self.out.len() - before;
                sink::emit(now.as_nanos(), || Event::TlsFlightSent {
                    flight: "finished",
                    bytes: flight_len,
                });
                self.complete(now);
            }
            (ClientState::WaitServerFlight12, HandshakePayload::Certificate { .. }) => {}
            (ClientState::WaitServerFlight12, HandshakePayload::ServerHelloDone) => {
                self.send_handshake(true, HandshakePayload::ClientKeyExchange);
                TlsRecord::ChangeCipherSpec.encode(&mut self.out);
                self.send_handshake(false, HandshakePayload::Finished);
                self.state = ClientState::WaitServerFinished12;
            }
            (ClientState::WaitServerFinished12, HandshakePayload::Finished) => {
                if self.resumed_12 {
                    // Abbreviated: the client's CCS+Finished go second.
                    TlsRecord::ChangeCipherSpec.encode(&mut self.out);
                    self.send_handshake(false, HandshakePayload::Finished);
                }
                self.complete(now);
            }
            (_, HandshakePayload::NewSessionTicket { ticket }) => {
                self.tickets.push(ticket);
            }
            (_, _other) => self.fail(TlsError::UnexpectedMessage("client state machine")),
        }
    }

    fn complete(&mut self, now: SimTime) {
        self.state = ClientState::Connected;
        self.connected_at = Some(now);
        let resumed = self.resumed_12 || self.resumed_13;
        sink::emit(now.as_nanos(), || Event::TlsHandshakeCompleted { resumed });
        metrics::count(Counter::TlsHandshakesCompleted, 1);
        if resumed {
            metrics::count(Counter::TlsResumedHandshakes, 1);
        }
        if !self.app_tx_pending.is_empty() {
            let data = std::mem::take(&mut self.app_tx_pending);
            for chunk in data.chunks(crate::tls::messages::MAX_RECORD_PLAINTEXT) {
                TlsRecord::app_data(chunk.to_vec()).encode(&mut self.out);
            }
        }
    }

    fn fail(&mut self, e: TlsError) {
        TlsRecord::Alert {
            fatal: true,
            code: 40,
        }
        .encode(&mut self.out);
        self.error = Some(e);
        self.state = ClientState::Failed;
    }

    /// Queue application data (sent as 0-RTT if possible, else after
    /// the handshake).
    pub fn write_app(&mut self, data: &[u8]) {
        if self.state == ClientState::Connected {
            for chunk in data.chunks(crate::tls::messages::MAX_RECORD_PLAINTEXT) {
                TlsRecord::app_data(chunk.to_vec()).encode(&mut self.out);
            }
        } else {
            self.app_tx_pending.extend_from_slice(data);
        }
    }

    /// Take decrypted application bytes.
    pub fn read_app(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.app_rx)
    }

    /// Take bytes to hand to the transport.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    pub fn is_connected(&self) -> bool {
        self.state == ClientState::Connected
    }

    pub fn connected_at(&self) -> Option<SimTime> {
        self.connected_at
    }

    pub fn error(&self) -> Option<&TlsError> {
        self.error.as_ref()
    }

    pub fn negotiated_version(&self) -> Option<TlsVersion> {
        self.version
    }

    pub fn negotiated_alpn(&self) -> Option<&[u8]> {
        self.alpn.as_deref()
    }

    /// Was the 0-RTT attempt accepted? `None` until known / not tried.
    pub fn early_data_accepted(&self) -> Option<bool> {
        self.early_accepted
    }

    /// Tickets received so far (drained).
    pub fn take_tickets(&mut self) -> Vec<SessionTicket> {
        std::mem::take(&mut self.tickets)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    WaitClientHello,
    /// TLS 1.3: flight sent, waiting for client Finished.
    WaitClientFinished13,
    /// TLS 1.2 full: waiting for CKE.
    WaitClientKeyExchange,
    /// TLS 1.2: waiting for client Finished.
    WaitClientFinished12,
    Connected,
    Failed,
}

/// Server endpoint.
#[derive(Debug)]
pub struct TlsServer {
    cfg: TlsConfig,
    state: ServerState,
    out: Vec<u8>,
    hs_in: HandshakeReader,
    rec_buf: Vec<u8>,
    app_rx: Vec<u8>,
    /// Early-data records arriving before the handshake completes.
    early_rx: Vec<u8>,
    early_accepted: bool,
    version: Option<TlsVersion>,
    alpn: Option<Vec<u8>>,
    connected_at: Option<SimTime>,
    error: Option<TlsError>,
    resumed: bool,
    /// PSK accepted on either version — observational only (the 1.3
    /// path does not feed [`Self::is_resumption`]).
    psk_accepted: bool,
    tickets_to_send: u32,
}

impl TlsServer {
    pub fn new(cfg: TlsConfig) -> Self {
        TlsServer {
            cfg,
            state: ServerState::WaitClientHello,
            out: Vec::new(),
            hs_in: HandshakeReader::new(),
            rec_buf: Vec::new(),
            app_rx: Vec::new(),
            early_rx: Vec::new(),
            early_accepted: false,
            version: None,
            alpn: None,
            connected_at: None,
            error: None,
            resumed: false,
            psk_accepted: false,
            tickets_to_send: 1,
        }
    }

    fn send_handshake(&mut self, plaintext_epoch: bool, payload: HandshakePayload) {
        let mut body = Vec::new();
        HandshakeMessage::new(payload).encode(&mut body);
        let rec = if plaintext_epoch {
            TlsRecord::PlainHandshake(body)
        } else {
            TlsRecord::encrypted_handshake(body)
        };
        rec.encode(&mut self.out);
    }

    pub fn read_wire(&mut self, now: SimTime, data: &[u8]) {
        if self.state == ServerState::Failed {
            return;
        }
        self.rec_buf.extend_from_slice(data);
        while let Some((rec, used)) = TlsRecord::decode(&self.rec_buf) {
            self.rec_buf.drain(..used);
            self.on_record(now, rec);
            if self.state == ServerState::Failed {
                return;
            }
        }
    }

    fn on_record(&mut self, now: SimTime, rec: TlsRecord) {
        match rec {
            TlsRecord::Alert { fatal, code } => {
                if fatal {
                    self.error.get_or_insert(TlsError::PeerAlert(code));
                    self.state = ServerState::Failed;
                }
            }
            TlsRecord::ChangeCipherSpec => {}
            TlsRecord::PlainHandshake(bytes)
            | TlsRecord::Encrypted {
                inner_type: 22,
                plaintext: bytes,
            } => {
                self.hs_in.push(&bytes);
                while let Some(msg) = self.hs_in.next_message() {
                    self.on_handshake(now, msg);
                    if self.state == ServerState::Failed {
                        return;
                    }
                }
            }
            TlsRecord::Encrypted {
                inner_type: 23,
                plaintext,
            } => {
                if self.state == ServerState::Connected {
                    self.app_rx.extend_from_slice(&plaintext);
                } else if self.early_accepted {
                    self.early_rx.extend_from_slice(&plaintext);
                }
                // Otherwise: early data we did not accept — in real TLS
                // it is undecryptable and skipped; the client replays.
            }
            TlsRecord::Encrypted { .. } => {}
        }
    }

    fn on_handshake(&mut self, now: SimTime, msg: HandshakeMessage) {
        match (self.state, msg.payload) {
            (
                ServerState::WaitClientHello,
                HandshakePayload::ClientHello {
                    versions,
                    alpn,
                    psk,
                    early_data,
                    ..
                },
            ) => self.on_client_hello(now, versions, alpn, psk, early_data),
            (ServerState::WaitClientFinished13, HandshakePayload::Finished) => {
                self.complete(now);
            }
            (ServerState::WaitClientKeyExchange, HandshakePayload::ClientKeyExchange) => {
                self.state = ServerState::WaitClientFinished12;
            }
            (ServerState::WaitClientFinished12, HandshakePayload::Finished) => {
                if !self.resumed {
                    TlsRecord::ChangeCipherSpec.encode(&mut self.out);
                    self.send_handshake(false, HandshakePayload::Finished);
                }
                self.complete(now);
            }
            (_, _other) => {
                self.error = Some(TlsError::UnexpectedMessage("server state machine"));
                self.state = ServerState::Failed;
            }
        }
    }

    fn on_client_hello(
        &mut self,
        now: SimTime,
        versions: Vec<TlsVersion>,
        alpn: Vec<Vec<u8>>,
        psk: Option<SessionTicket>,
        early_data: bool,
    ) {
        // Version: server preference order.
        let Some(version) = self
            .cfg
            .versions
            .iter()
            .copied()
            .find(|v| versions.contains(v))
        else {
            TlsRecord::Alert {
                fatal: true,
                code: 70,
            }
            .encode(&mut self.out);
            self.error = Some(TlsError::NoCommonVersion);
            self.state = ServerState::Failed;
            return;
        };
        // ALPN: first client protocol the server supports.
        let chosen_alpn = alpn.iter().find(|a| self.cfg.alpn.contains(a)).cloned();
        if chosen_alpn.is_none() && !self.cfg.alpn.is_empty() && !alpn.is_empty() {
            TlsRecord::Alert {
                fatal: true,
                code: 120,
            }
            .encode(&mut self.out);
            self.error = Some(TlsError::NoCommonAlpn);
            self.state = ServerState::Failed;
            return;
        }
        self.version = Some(version);
        self.alpn = chosen_alpn.clone();
        // PSK validation: our ticket, still valid, same version+ALPN.
        let psk_ok = psk.as_ref().is_some_and(|t| {
            t.server_id == self.cfg.server_id
                && t.is_valid_at(now)
                && t.version == version
                && chosen_alpn.as_deref() == Some(&t.alpn[..])
        });
        let flight_start = self.out.len();
        self.psk_accepted = psk_ok;
        match version {
            TlsVersion::Tls13 => {
                self.early_accepted = psk_ok
                    && early_data
                    && self.cfg.enable_0rtt
                    && psk.as_ref().is_some_and(|t| t.allows_early_data);
                self.send_handshake(
                    true,
                    HandshakePayload::ServerHello {
                        version,
                        resumed: psk_ok,
                    },
                );
                self.send_handshake(
                    false,
                    HandshakePayload::EncryptedExtensions {
                        alpn: chosen_alpn,
                        early_data_accepted: self.early_accepted,
                    },
                );
                if !psk_ok {
                    self.send_handshake(
                        false,
                        HandshakePayload::Certificate {
                            chain_len: self.cfg.cert_chain_len,
                        },
                    );
                    self.send_handshake(false, HandshakePayload::CertificateVerify);
                }
                self.send_handshake(false, HandshakePayload::Finished);
                self.state = ServerState::WaitClientFinished13;
            }
            TlsVersion::Tls12 => {
                self.resumed = psk_ok;
                self.send_handshake(
                    true,
                    HandshakePayload::ServerHello {
                        version,
                        resumed: psk_ok,
                    },
                );
                if psk_ok {
                    TlsRecord::ChangeCipherSpec.encode(&mut self.out);
                    self.send_handshake(false, HandshakePayload::Finished);
                    self.state = ServerState::WaitClientFinished12;
                } else {
                    self.send_handshake(
                        true,
                        HandshakePayload::Certificate {
                            chain_len: self.cfg.cert_chain_len,
                        },
                    );
                    self.send_handshake(true, HandshakePayload::ServerHelloDone);
                    self.state = ServerState::WaitClientKeyExchange;
                }
            }
        }
        let flight_len = self.out.len() - flight_start;
        sink::emit(now.as_nanos(), || Event::TlsFlightSent {
            flight: "server_hello",
            bytes: flight_len,
        });
    }

    fn complete(&mut self, now: SimTime) {
        self.state = ServerState::Connected;
        self.connected_at = Some(now);
        // Client-side counts the handshake metrics; only the trace
        // event is mirrored here.
        let resumed = self.psk_accepted;
        sink::emit(now.as_nanos(), || Event::TlsHandshakeCompleted { resumed });
        // Promote early data and issue tickets.
        self.app_rx.splice(0..0, std::mem::take(&mut self.early_rx));
        for _ in 0..self.tickets_to_send {
            let ticket = SessionTicket {
                server_id: self.cfg.server_id,
                version: self.version.expect("set in CH"),
                alpn: self.alpn.clone().unwrap_or_default(),
                issued_at: now,
                lifetime: self.cfg.ticket_lifetime,
                // Early data is a TLS 1.3 mechanism (RFC 8446 §4.2.10):
                // a ticket from a 1.2 handshake must never advertise it,
                // or the next connection sends 0-RTT records a 1.2
                // server silently drops.
                allows_early_data: self.cfg.enable_0rtt && self.version == Some(TlsVersion::Tls13),
                opaque_len: 120,
            };
            self.send_handshake(false, HandshakePayload::NewSessionTicket { ticket });
        }
    }

    pub fn write_app(&mut self, data: &[u8]) {
        for chunk in data.chunks(crate::tls::messages::MAX_RECORD_PLAINTEXT) {
            TlsRecord::app_data(chunk.to_vec()).encode(&mut self.out);
        }
    }

    pub fn read_app(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.app_rx)
    }

    /// Early data readable before the handshake finishes (only when
    /// 0-RTT was accepted).
    pub fn read_early(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.early_rx)
    }

    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    pub fn is_connected(&self) -> bool {
        self.state == ServerState::Connected
    }

    pub fn connected_at(&self) -> Option<SimTime> {
        self.connected_at
    }

    pub fn error(&self) -> Option<&TlsError> {
        self.error.as_ref()
    }

    pub fn negotiated_version(&self) -> Option<TlsVersion> {
        self.version
    }

    pub fn negotiated_alpn(&self) -> Option<&[u8]> {
        self.alpn.as_deref()
    }

    pub fn early_data_was_accepted(&self) -> bool {
        self.early_accepted
    }

    /// The handshake resumed a previous session (PSK / session ID).
    pub fn is_resumption(&self) -> bool {
        self.resumed
            || self.early_accepted
            || (self.version == Some(TlsVersion::Tls13) && {
                // For 1.3 the `resumed` field is reused via SH echo; track
                // it through the certificate-skip: connected without a
                // certificate having been sent.
                false
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_server(alpn: &[&str]) -> TlsConfig {
        TlsConfig {
            server_id: 7,
            alpn: alpn.iter().map(|a| a.as_bytes().to_vec()).collect(),
            ..TlsConfig::default()
        }
    }

    fn cfg_client(alpn: &[&str]) -> TlsConfig {
        TlsConfig {
            alpn: alpn.iter().map(|a| a.as_bytes().to_vec()).collect(),
            ..TlsConfig::default()
        }
    }

    /// Shuttle bytes between the endpoints until both go quiet.
    /// Each shuttle direction counts as half a round trip; returns the
    /// number of *flights* the client sent.
    fn run(client: &mut TlsClient, server: &mut TlsServer) -> usize {
        let mut client_flights = 0;
        for _ in 0..20 {
            let c_out = client.take_output();
            if !c_out.is_empty() {
                client_flights += 1;
                server.read_wire(SimTime::ZERO, &c_out);
            }
            let s_out = server.take_output();
            if !s_out.is_empty() {
                client.read_wire(SimTime::ZERO, &s_out);
            }
            if c_out.is_empty() && s_out.is_empty() {
                break;
            }
        }
        client_flights
    }

    #[test]
    fn full_13_handshake_connects_with_one_client_flight_before_fin() {
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert!(c.is_connected());
        assert!(s.is_connected());
        assert_eq!(c.negotiated_version(), Some(TlsVersion::Tls13));
        assert_eq!(c.negotiated_alpn(), Some(&b"dot"[..]));
        assert_eq!(s.negotiated_alpn(), Some(&b"dot"[..]));
    }

    #[test]
    fn app_data_flows_after_handshake() {
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        c.write_app(b"query");
        run(&mut c, &mut s);
        assert_eq!(s.read_app(), b"query");
        s.write_app(b"answer");
        run(&mut c, &mut s);
        assert_eq!(c.read_app(), b"answer");
    }

    #[test]
    fn app_data_queued_before_connect_is_flushed_at_connect() {
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.write_app(b"early-queued");
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert!(c.is_connected());
        assert_eq!(s.read_app(), b"early-queued");
    }

    #[test]
    fn client_receives_a_7day_ticket() {
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        let tickets = c.take_tickets();
        assert_eq!(tickets.len(), 1);
        assert_eq!(tickets[0].lifetime, Duration::from_secs(7 * 24 * 3600));
        assert_eq!(tickets[0].server_id, 7);
    }

    fn obtain_ticket(server_cfg: &TlsConfig, client_cfg: &TlsConfig) -> SessionTicket {
        let mut c = TlsClient::new(client_cfg.clone(), None);
        let mut s = TlsServer::new(server_cfg.clone());
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        c.take_tickets().remove(0)
    }

    #[test]
    fn resumption_skips_certificate() {
        let s_cfg = cfg_server(&["dot"]);
        let c_cfg = cfg_client(&["dot"]);
        let ticket = obtain_ticket(&s_cfg, &c_cfg);

        // Full handshake server flight includes the ~2.4 KB chain.
        let mut c1 = TlsClient::new(c_cfg.clone(), None);
        let mut s1 = TlsServer::new(s_cfg.clone());
        c1.start(SimTime::ZERO);
        s1.read_wire(SimTime::ZERO, &c1.take_output());
        let full_flight = s1.take_output().len();

        let mut c2 = TlsClient::new(c_cfg, Some(ticket));
        let mut s2 = TlsServer::new(s_cfg);
        c2.start(SimTime::ZERO);
        s2.read_wire(SimTime::ZERO, &c2.take_output());
        let resumed_flight = s2.take_output();

        assert!(
            full_flight > resumed_flight.len() + 2000,
            "full {full_flight} vs resumed {}",
            resumed_flight.len()
        );
        // Finish the resumed handshake.
        c2.read_wire(SimTime::ZERO, &resumed_flight);
        run(&mut c2, &mut s2);
        assert!(c2.is_connected() && s2.is_connected());
    }

    #[test]
    fn expired_ticket_falls_back_to_full_handshake() {
        let s_cfg = cfg_server(&["dot"]);
        let c_cfg = cfg_client(&["dot"]);
        let ticket = obtain_ticket(&s_cfg, &c_cfg);
        let after_expiry = SimTime::ZERO + ticket.lifetime + Duration::from_secs(1);
        let mut c = TlsClient::new(c_cfg, Some(ticket));
        let mut s = TlsServer::new(s_cfg);
        c.start(after_expiry);
        s.read_wire(after_expiry, &c.take_output());
        // Server sent a certificate: flight is large.
        assert!(s.take_output().len() > 2000);
    }

    #[test]
    fn wrong_server_ticket_is_rejected_not_fatal() {
        let s_cfg = cfg_server(&["dot"]);
        let c_cfg = cfg_client(&["dot"]);
        let mut ticket = obtain_ticket(&s_cfg, &c_cfg);
        ticket.server_id = 999; // some other resolver's ticket
        let mut c = TlsClient::new(c_cfg, Some(ticket));
        let mut s = TlsServer::new(s_cfg);
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert!(c.is_connected(), "falls back to a full handshake");
    }

    #[test]
    fn zero_rtt_accepted_delivers_before_client_finished() {
        let s_cfg = TlsConfig {
            enable_0rtt: true,
            ..cfg_server(&["doq"])
        };
        let c_cfg = TlsConfig {
            enable_0rtt: true,
            ..cfg_client(&["doq"])
        };
        let ticket = obtain_ticket(&s_cfg, &c_cfg);
        assert!(ticket.allows_early_data);
        let mut c = TlsClient::new(c_cfg, Some(ticket));
        let mut s = TlsServer::new(s_cfg);
        c.write_app(b"0rtt-query");
        c.start(SimTime::ZERO);
        // First client flight only.
        s.read_wire(SimTime::ZERO, &c.take_output());
        assert!(s.early_data_was_accepted());
        assert_eq!(s.read_early(), b"0rtt-query");
        run(&mut c, &mut s);
        assert_eq!(c.early_data_accepted(), Some(true));
    }

    #[test]
    fn zero_rtt_rejected_replays_after_handshake() {
        // Server does not enable 0-RTT (like every resolver the paper
        // measured); ticket therefore forbids early data, client with
        // 0-RTT enabled cannot attempt it, and the data flows 1-RTT.
        let s_cfg = cfg_server(&["doq"]);
        let c_cfg = TlsConfig {
            enable_0rtt: true,
            ..cfg_client(&["doq"])
        };
        let ticket = obtain_ticket(&s_cfg, &c_cfg);
        assert!(!ticket.allows_early_data);
        let mut c = TlsClient::new(c_cfg, Some(ticket));
        let mut s = TlsServer::new(s_cfg);
        c.write_app(b"query");
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert!(c.is_connected());
        assert_eq!(c.early_data_accepted(), None, "never attempted");
        assert_eq!(s.read_app(), b"query");
    }

    #[test]
    fn tls12_full_handshake_takes_two_client_flights() {
        let s_cfg = TlsConfig {
            versions: vec![TlsVersion::Tls12],
            ..cfg_server(&["dot"])
        };
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(s_cfg);
        c.start(SimTime::ZERO);
        let flights = run(&mut c, &mut s);
        assert!(c.is_connected() && s.is_connected());
        assert_eq!(c.negotiated_version(), Some(TlsVersion::Tls12));
        assert_eq!(flights, 2, "CH, then CKE+CCS+Fin");
    }

    #[test]
    fn tls12_resumption_takes_one_round_less() {
        let s_cfg = TlsConfig {
            versions: vec![TlsVersion::Tls12],
            ..cfg_server(&["dot"])
        };
        let c_cfg = cfg_client(&["dot"]);
        let ticket = obtain_ticket(&s_cfg, &c_cfg);
        assert_eq!(ticket.version, TlsVersion::Tls12);
        let mut c = TlsClient::new(c_cfg, Some(ticket));
        let mut s = TlsServer::new(s_cfg);
        c.start(SimTime::ZERO);
        // CH -> SH+CCS+Fin: after one server flight the client finishes.
        s.read_wire(SimTime::ZERO, &c.take_output());
        c.read_wire(SimTime::ZERO, &s.take_output());
        assert!(
            c.is_connected(),
            "client connects after first server flight"
        );
    }

    #[test]
    fn no_common_version_fails_cleanly() {
        let s_cfg = TlsConfig {
            versions: vec![TlsVersion::Tls12],
            ..cfg_server(&["dot"])
        };
        let c_cfg = TlsConfig {
            versions: vec![TlsVersion::Tls13],
            ..cfg_client(&["dot"])
        };
        let mut c = TlsClient::new(c_cfg, None);
        let mut s = TlsServer::new(s_cfg);
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert_eq!(s.error(), Some(&TlsError::NoCommonVersion));
        assert!(!c.is_connected());
        assert!(matches!(c.error(), Some(TlsError::PeerAlert(_))));
    }

    #[test]
    fn no_common_alpn_fails_cleanly() {
        let mut c = TlsClient::new(cfg_client(&["doq"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.start(SimTime::ZERO);
        run(&mut c, &mut s);
        assert_eq!(s.error(), Some(&TlsError::NoCommonAlpn));
        assert!(!c.is_connected());
    }

    #[test]
    fn bytes_survive_arbitrary_chunking() {
        let mut c = TlsClient::new(cfg_client(&["dot"]), None);
        let mut s = TlsServer::new(cfg_server(&["dot"]));
        c.start(SimTime::ZERO);
        // Deliver the handshake one byte at a time.
        for _ in 0..10 {
            let out = c.take_output();
            for b in out {
                s.read_wire(SimTime::ZERO, &[b]);
            }
            let out = s.take_output();
            for b in out {
                c.read_wire(SimTime::ZERO, &[b]);
            }
            if c.is_connected() && s.is_connected() {
                break;
            }
        }
        assert!(c.is_connected() && s.is_connected());
    }
}
