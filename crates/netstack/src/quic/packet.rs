//! QUIC packet headers (RFC 9000 §17): long headers for
//! Initial/0-RTT/Handshake/Retry, the short header for 1-RTT, and the
//! Version Negotiation packet — including its use as the stateless
//! response to the version-0 probe the paper's scanner sends.

use super::varint::{read_varint, write_varint};
use super::PACKET_TAG_LEN;

/// Connection IDs are fixed at 8 bytes in this implementation.
pub const CID_LEN: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    Initial,
    ZeroRtt,
    Handshake,
    Retry,
    /// Short header.
    OneRtt,
}

/// A parsed packet. Protected packet payloads carry a modelled 16-byte
/// AEAD tag on the wire which is stripped on decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub ptype: PacketType,
    pub version: u32,
    pub dcid: [u8; CID_LEN],
    pub scid: [u8; CID_LEN],
    /// Initial only.
    pub token: Vec<u8>,
    pub packet_number: u64,
    /// Frame bytes (plaintext).
    pub payload: Vec<u8>,
}

impl Packet {
    pub fn new(
        ptype: PacketType,
        version: u32,
        dcid: [u8; CID_LEN],
        scid: [u8; CID_LEN],
        packet_number: u64,
        payload: Vec<u8>,
    ) -> Self {
        Packet {
            ptype,
            version,
            dcid,
            scid,
            token: Vec::new(),
            packet_number,
            payload,
        }
    }

    fn type_bits(ptype: PacketType) -> u8 {
        match ptype {
            PacketType::Initial => 0,
            PacketType::ZeroRtt => 1,
            PacketType::Handshake => 2,
            PacketType::Retry => 3,
            PacketType::OneRtt => unreachable!("short header"),
        }
    }

    /// Size this packet will occupy on the wire.
    pub fn wire_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Append the encoded packet.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self.ptype {
            PacketType::OneRtt => {
                out.push(0x40); // short header: form=0, fixed=1
                out.extend_from_slice(&self.dcid);
                out.extend_from_slice(&(self.packet_number as u32).to_be_bytes());
                out.extend_from_slice(&self.payload);
                out.extend(std::iter::repeat_n(0u8, PACKET_TAG_LEN));
            }
            ptype => {
                out.push(0xC0 | (Self::type_bits(ptype) << 4));
                out.extend_from_slice(&self.version.to_be_bytes());
                out.push(CID_LEN as u8);
                out.extend_from_slice(&self.dcid);
                out.push(CID_LEN as u8);
                out.extend_from_slice(&self.scid);
                if ptype == PacketType::Initial {
                    write_varint(out, self.token.len() as u64);
                    out.extend_from_slice(&self.token);
                }
                if ptype == PacketType::Retry {
                    // Retry: token runs to the end (plus integrity tag).
                    out.extend_from_slice(&self.token);
                    out.extend(std::iter::repeat_n(0u8, PACKET_TAG_LEN));
                    return;
                }
                // Length covers packet number (4 bytes) + payload + tag.
                write_varint(out, 4 + self.payload.len() as u64 + PACKET_TAG_LEN as u64);
                out.extend_from_slice(&(self.packet_number as u32).to_be_bytes());
                out.extend_from_slice(&self.payload);
                out.extend(std::iter::repeat_n(0u8, PACKET_TAG_LEN));
            }
        }
    }

    /// Parse the packet at `buf[*pos..]`, advancing `pos` past it.
    /// Short-header packets consume the rest of the datagram.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Packet> {
        let first = *buf.get(*pos)?;
        if first & 0x80 == 0 {
            // Short header.
            *pos += 1;
            if *pos + CID_LEN + 4 > buf.len() {
                return None;
            }
            let mut dcid = [0u8; CID_LEN];
            dcid.copy_from_slice(&buf[*pos..*pos + CID_LEN]);
            *pos += CID_LEN;
            let pn = u32::from_be_bytes(buf[*pos..*pos + 4].try_into().ok()?) as u64;
            *pos += 4;
            let rest = &buf[*pos..];
            if rest.len() < PACKET_TAG_LEN {
                return None;
            }
            let payload = rest[..rest.len() - PACKET_TAG_LEN].to_vec();
            *pos = buf.len();
            return Some(Packet {
                ptype: PacketType::OneRtt,
                version: 0,
                dcid,
                scid: [0; CID_LEN],
                token: Vec::new(),
                packet_number: pn,
                payload,
            });
        }
        // Long header.
        *pos += 1;
        if *pos + 4 > buf.len() {
            return None;
        }
        let version = u32::from_be_bytes(buf[*pos..*pos + 4].try_into().ok()?);
        *pos += 4;
        let dcid_len = *buf.get(*pos)? as usize;
        *pos += 1;
        if dcid_len != CID_LEN || *pos + CID_LEN > buf.len() {
            return None;
        }
        let mut dcid = [0u8; CID_LEN];
        dcid.copy_from_slice(&buf[*pos..*pos + CID_LEN]);
        *pos += CID_LEN;
        let scid_len = *buf.get(*pos)? as usize;
        *pos += 1;
        if scid_len != CID_LEN || *pos + CID_LEN > buf.len() {
            return None;
        }
        let mut scid = [0u8; CID_LEN];
        scid.copy_from_slice(&buf[*pos..*pos + CID_LEN]);
        *pos += CID_LEN;
        let ptype = match (first >> 4) & 0x03 {
            0 => PacketType::Initial,
            1 => PacketType::ZeroRtt,
            2 => PacketType::Handshake,
            _ => PacketType::Retry,
        };
        let mut token = Vec::new();
        if ptype == PacketType::Initial {
            let tlen = read_varint(buf, pos)? as usize;
            if *pos + tlen > buf.len() {
                return None;
            }
            token = buf[*pos..*pos + tlen].to_vec();
            *pos += tlen;
        }
        if ptype == PacketType::Retry {
            let rest = &buf[*pos..];
            if rest.len() < PACKET_TAG_LEN {
                return None;
            }
            let token = rest[..rest.len() - PACKET_TAG_LEN].to_vec();
            *pos = buf.len();
            return Some(Packet {
                ptype,
                version,
                dcid,
                scid,
                token,
                packet_number: 0,
                payload: Vec::new(),
            });
        }
        let length = read_varint(buf, pos)? as usize;
        if length < 4 + PACKET_TAG_LEN || *pos + length > buf.len() {
            return None;
        }
        let pn = u32::from_be_bytes(buf[*pos..*pos + 4].try_into().ok()?) as u64;
        let payload = buf[*pos + 4..*pos + length - PACKET_TAG_LEN].to_vec();
        *pos += length;
        Some(Packet {
            ptype,
            version,
            dcid,
            scid,
            token,
            packet_number: pn,
            payload,
        })
    }

    /// Peek the version field of a long-header packet without full
    /// parsing (what a server does to decide on Version Negotiation).
    pub fn peek_long_header_version(buf: &[u8]) -> Option<u32> {
        if buf.len() < 5 || buf[0] & 0x80 == 0 {
            return None;
        }
        Some(u32::from_be_bytes(buf[1..5].try_into().ok()?))
    }
}

/// A Version Negotiation packet (version field = 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionNegotiation {
    pub dcid: [u8; CID_LEN],
    pub scid: [u8; CID_LEN],
    pub supported: Vec<u32>,
}

impl VersionNegotiation {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0x80];
        out.extend_from_slice(&0u32.to_be_bytes());
        out.push(CID_LEN as u8);
        out.extend_from_slice(&self.dcid);
        out.push(CID_LEN as u8);
        out.extend_from_slice(&self.scid);
        for v in &self.supported {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Parse a datagram as Version Negotiation. Returns `None` unless
    /// the version field is zero.
    pub fn decode(buf: &[u8]) -> Option<VersionNegotiation> {
        if buf.len() < 5 || buf[0] & 0x80 == 0 {
            return None;
        }
        if u32::from_be_bytes(buf[1..5].try_into().ok()?) != 0 {
            return None;
        }
        let mut pos = 5usize;
        let dcid_len = *buf.get(pos)? as usize;
        pos += 1;
        if dcid_len != CID_LEN {
            return None;
        }
        let mut dcid = [0u8; CID_LEN];
        dcid.copy_from_slice(buf.get(pos..pos + CID_LEN)?);
        pos += CID_LEN;
        let scid_len = *buf.get(pos)? as usize;
        pos += 1;
        if scid_len != CID_LEN {
            return None;
        }
        let mut scid = [0u8; CID_LEN];
        scid.copy_from_slice(buf.get(pos..pos + CID_LEN)?);
        pos += CID_LEN;
        let mut supported = Vec::new();
        while pos + 4 <= buf.len() {
            supported.push(u32::from_be_bytes(buf[pos..pos + 4].try_into().ok()?));
            pos += 4;
        }
        Some(VersionNegotiation {
            dcid,
            scid,
            supported,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic::QUIC_V1;

    fn cid(b: u8) -> [u8; CID_LEN] {
        [b; CID_LEN]
    }

    #[test]
    fn initial_roundtrip_with_token() {
        let mut p = Packet::new(
            PacketType::Initial,
            QUIC_V1,
            cid(1),
            cid(2),
            7,
            vec![6, 0, 5, 1, 2, 3, 4, 9],
        );
        p.token = vec![0xAA; 24];
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), p.wire_len());
        let mut pos = 0;
        let back = Packet::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(back, p);
    }

    #[test]
    fn handshake_and_zero_rtt_roundtrip() {
        for ptype in [PacketType::Handshake, PacketType::ZeroRtt] {
            let p = Packet::new(ptype, QUIC_V1, cid(3), cid(4), 0, vec![1; 100]);
            let mut buf = Vec::new();
            p.encode(&mut buf);
            let mut pos = 0;
            assert_eq!(Packet::decode(&buf, &mut pos).unwrap(), p);
        }
    }

    #[test]
    fn short_header_roundtrip() {
        let p = Packet::new(
            PacketType::OneRtt,
            0,
            cid(5),
            cid(0),
            42,
            b"stream".to_vec(),
        );
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut pos = 0;
        let back = Packet::decode(&buf, &mut pos).unwrap();
        assert_eq!(back.ptype, PacketType::OneRtt);
        assert_eq!(back.packet_number, 42);
        assert_eq!(back.payload, b"stream");
        assert_eq!(back.dcid, cid(5));
    }

    #[test]
    fn coalesced_packets_parse_sequentially() {
        // Initial + Handshake + 1-RTT in one datagram, like a server's
        // first flight.
        let mut buf = Vec::new();
        Packet::new(PacketType::Initial, QUIC_V1, cid(1), cid(2), 0, vec![2; 10]).encode(&mut buf);
        Packet::new(
            PacketType::Handshake,
            QUIC_V1,
            cid(1),
            cid(2),
            0,
            vec![3; 20],
        )
        .encode(&mut buf);
        Packet::new(PacketType::OneRtt, 0, cid(1), cid(0), 0, vec![4; 30]).encode(&mut buf);
        let mut pos = 0;
        let a = Packet::decode(&buf, &mut pos).unwrap();
        let b = Packet::decode(&buf, &mut pos).unwrap();
        let c = Packet::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(
            (a.ptype, b.ptype, c.ptype),
            (
                PacketType::Initial,
                PacketType::Handshake,
                PacketType::OneRtt
            )
        );
        assert_eq!(c.payload.len(), 30);
    }

    #[test]
    fn protected_packets_carry_tag_overhead() {
        let p = Packet::new(PacketType::OneRtt, 0, cid(1), cid(0), 0, vec![0; 10]);
        // 1 first byte + 8 dcid + 4 pn + 10 payload + 16 tag.
        assert_eq!(p.wire_len(), 1 + 8 + 4 + 10 + 16);
    }

    #[test]
    fn retry_roundtrip() {
        let mut p = Packet::new(PacketType::Retry, QUIC_V1, cid(1), cid(2), 0, Vec::new());
        p.token = vec![7; 40];
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut pos = 0;
        let back = Packet::decode(&buf, &mut pos).unwrap();
        assert_eq!(back.ptype, PacketType::Retry);
        assert_eq!(back.token, vec![7; 40]);
    }

    #[test]
    fn version_negotiation_roundtrip() {
        let vn = VersionNegotiation {
            dcid: cid(9),
            scid: cid(8),
            supported: vec![QUIC_V1, crate::quic::draft_version(29)],
        };
        let buf = vn.encode();
        assert_eq!(VersionNegotiation::decode(&buf), Some(vn));
        // A version-1 packet is not VN.
        let p = Packet::new(PacketType::Initial, QUIC_V1, cid(1), cid(2), 0, vec![1; 30]);
        let mut pbuf = Vec::new();
        p.encode(&mut pbuf);
        assert_eq!(VersionNegotiation::decode(&pbuf), None);
    }

    #[test]
    fn peek_version() {
        let p = Packet::new(
            PacketType::Initial,
            0xff00_0022,
            cid(1),
            cid(2),
            0,
            vec![1; 30],
        );
        let mut buf = Vec::new();
        p.encode(&mut buf);
        assert_eq!(Packet::peek_long_header_version(&buf), Some(0xff00_0022));
        let short = Packet::new(PacketType::OneRtt, 0, cid(1), cid(0), 0, vec![]);
        let mut sbuf = Vec::new();
        short.encode(&mut sbuf);
        assert_eq!(Packet::peek_long_header_version(&sbuf), None);
    }

    #[test]
    fn truncated_packets_rejected() {
        let p = Packet::new(PacketType::Initial, QUIC_V1, cid(1), cid(2), 0, vec![1; 30]);
        let mut buf = Vec::new();
        p.encode(&mut buf);
        for cut in [1, 5, 10, buf.len() - 1] {
            let mut pos = 0;
            assert!(
                Packet::decode(&buf[..cut], &mut pos).is_none(),
                "cut = {cut}"
            );
        }
    }
}
