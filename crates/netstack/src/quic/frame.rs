//! QUIC frames (RFC 9000 §19). The subset a DoQ connection exercises:
//! PADDING, PING, ACK (with ranges), CRYPTO, NEW_TOKEN, STREAM,
//! PATH_CHALLENGE, PATH_RESPONSE, CONNECTION_CLOSE and HANDSHAKE_DONE.

use super::varint::{read_varint, varint_len, write_varint};

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `n` bytes of padding (run-length encoded here; one byte each on
    /// the wire).
    Padding(usize),
    Ping,
    /// Acknowledged packet-number ranges, descending, inclusive.
    Ack {
        ranges: Vec<(u64, u64)>,
        delay: u64,
    },
    Crypto {
        offset: u64,
        data: Vec<u8>,
    },
    NewToken {
        token: Vec<u8>,
    },
    Stream {
        id: u64,
        offset: u64,
        data: Vec<u8>,
        fin: bool,
    },
    /// Path validation probe (RFC 9000 §19.17): 8 opaque bytes the
    /// peer must echo in a PATH_RESPONSE on the same path.
    PathChallenge([u8; 8]),
    /// Echo of a received PATH_CHALLENGE (RFC 9000 §19.18).
    PathResponse([u8; 8]),
    ConnectionClose {
        error_code: u64,
        reason: Vec<u8>,
    },
    HandshakeDone,
}

impl Frame {
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Padding(_) | Frame::Ack { .. } | Frame::ConnectionClose { .. }
        )
    }

    /// Encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::Padding(n) => *n,
            Frame::Ping => 1,
            Frame::Ack { ranges, .. } => {
                let mut len = 1
                    + varint_len(ranges[0].0)
                    + varint_len(0)
                    + varint_len(ranges.len() as u64 - 1);
                len += varint_len(ranges[0].0 - ranges[0].1);
                for w in ranges.windows(2) {
                    let gap = w[0].1 - w[1].0 - 2;
                    len += varint_len(gap) + varint_len(w[1].0 - w[1].1);
                }
                len
            }
            Frame::Crypto { offset, data } => {
                1 + varint_len(*offset) + varint_len(data.len() as u64) + data.len()
            }
            Frame::NewToken { token } => 1 + varint_len(token.len() as u64) + token.len(),
            Frame::Stream {
                id, offset, data, ..
            } => {
                1 + varint_len(*id)
                    + varint_len(*offset)
                    + varint_len(data.len() as u64)
                    + data.len()
            }
            Frame::PathChallenge(_) | Frame::PathResponse(_) => 1 + 8,
            Frame::ConnectionClose { error_code, reason } => {
                1 + varint_len(*error_code)
                    + varint_len(0)
                    + varint_len(reason.len() as u64)
                    + reason.len()
            }
            Frame::HandshakeDone => 1,
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Padding(n) => out.extend(std::iter::repeat_n(0u8, *n)),
            Frame::Ping => out.push(0x01),
            Frame::Ack { ranges, delay } => {
                assert!(!ranges.is_empty(), "ACK needs at least one range");
                out.push(0x02);
                let (largest, first_lo) = ranges[0];
                write_varint(out, largest);
                write_varint(out, *delay);
                write_varint(out, ranges.len() as u64 - 1);
                write_varint(out, largest - first_lo);
                for w in ranges.windows(2) {
                    let (_prev_hi, prev_lo) = w[0];
                    let (hi, lo) = w[1];
                    // gap = number of unacked packets between ranges - 1
                    write_varint(out, prev_lo - hi - 2);
                    write_varint(out, hi - lo);
                }
            }
            Frame::Crypto { offset, data } => {
                out.push(0x06);
                write_varint(out, *offset);
                write_varint(out, data.len() as u64);
                out.extend_from_slice(data);
            }
            Frame::NewToken { token } => {
                out.push(0x07);
                write_varint(out, token.len() as u64);
                out.extend_from_slice(token);
            }
            Frame::Stream {
                id,
                offset,
                data,
                fin,
            } => {
                // 0x08 | OFF(0x04) | LEN(0x02) | FIN(0x01); we always set
                // OFF and LEN for a self-delimiting encoding.
                out.push(0x08 | 0x04 | 0x02 | (*fin as u8));
                write_varint(out, *id);
                write_varint(out, *offset);
                write_varint(out, data.len() as u64);
                out.extend_from_slice(data);
            }
            Frame::PathChallenge(data) => {
                out.push(0x1A);
                out.extend_from_slice(data);
            }
            Frame::PathResponse(data) => {
                out.push(0x1B);
                out.extend_from_slice(data);
            }
            Frame::ConnectionClose { error_code, reason } => {
                out.push(0x1C);
                write_varint(out, *error_code);
                write_varint(out, 0); // offending frame type
                write_varint(out, reason.len() as u64);
                out.extend_from_slice(reason);
            }
            Frame::HandshakeDone => out.push(0x1E),
        }
    }

    /// Decode every frame in a packet payload. Returns `None` on any
    /// malformed frame. Consecutive PADDING bytes are merged.
    pub fn decode_all(buf: &[u8]) -> Option<Vec<Frame>> {
        let mut frames = Vec::new();
        let mut pos = 0;
        while pos < buf.len() {
            let ftype = buf[pos];
            match ftype {
                0x00 => {
                    let start = pos;
                    while pos < buf.len() && buf[pos] == 0 {
                        pos += 1;
                    }
                    frames.push(Frame::Padding(pos - start));
                }
                0x01 => {
                    pos += 1;
                    frames.push(Frame::Ping);
                }
                0x02 | 0x03 => {
                    pos += 1;
                    let largest = read_varint(buf, &mut pos)?;
                    let delay = read_varint(buf, &mut pos)?;
                    let range_count = read_varint(buf, &mut pos)?;
                    let first = read_varint(buf, &mut pos)?;
                    let mut lo = largest.checked_sub(first)?;
                    let mut ranges = vec![(largest, lo)];
                    for _ in 0..range_count {
                        let gap = read_varint(buf, &mut pos)?;
                        let len = read_varint(buf, &mut pos)?;
                        let hi = lo.checked_sub(gap + 2)?;
                        lo = hi.checked_sub(len)?;
                        ranges.push((hi, lo));
                    }
                    frames.push(Frame::Ack { ranges, delay });
                }
                0x06 => {
                    pos += 1;
                    let offset = read_varint(buf, &mut pos)?;
                    let len = read_varint(buf, &mut pos)? as usize;
                    if pos + len > buf.len() {
                        return None;
                    }
                    frames.push(Frame::Crypto {
                        offset,
                        data: buf[pos..pos + len].to_vec(),
                    });
                    pos += len;
                }
                0x07 => {
                    pos += 1;
                    let len = read_varint(buf, &mut pos)? as usize;
                    if pos + len > buf.len() {
                        return None;
                    }
                    frames.push(Frame::NewToken {
                        token: buf[pos..pos + len].to_vec(),
                    });
                    pos += len;
                }
                0x08..=0x0F => {
                    let fin = ftype & 0x01 != 0;
                    let has_len = ftype & 0x02 != 0;
                    let has_off = ftype & 0x04 != 0;
                    pos += 1;
                    let id = read_varint(buf, &mut pos)?;
                    let offset = if has_off {
                        read_varint(buf, &mut pos)?
                    } else {
                        0
                    };
                    let len = if has_len {
                        read_varint(buf, &mut pos)? as usize
                    } else {
                        buf.len() - pos
                    };
                    if pos + len > buf.len() {
                        return None;
                    }
                    frames.push(Frame::Stream {
                        id,
                        offset,
                        data: buf[pos..pos + len].to_vec(),
                        fin,
                    });
                    pos += len;
                }
                0x1A | 0x1B => {
                    pos += 1;
                    if pos + 8 > buf.len() {
                        return None;
                    }
                    let mut data = [0u8; 8];
                    data.copy_from_slice(&buf[pos..pos + 8]);
                    pos += 8;
                    frames.push(if ftype == 0x1A {
                        Frame::PathChallenge(data)
                    } else {
                        Frame::PathResponse(data)
                    });
                }
                0x1C | 0x1D => {
                    pos += 1;
                    let error_code = read_varint(buf, &mut pos)?;
                    if ftype == 0x1C {
                        let _frame_type = read_varint(buf, &mut pos)?;
                    }
                    let len = read_varint(buf, &mut pos)? as usize;
                    if pos + len > buf.len() {
                        return None;
                    }
                    frames.push(Frame::ConnectionClose {
                        error_code,
                        reason: buf[pos..pos + len].to_vec(),
                    });
                    pos += len;
                }
                0x1E => {
                    pos += 1;
                    frames.push(Frame::HandshakeDone);
                }
                _ => return None,
            }
        }
        Some(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frames: Vec<Frame>) {
        let mut buf = Vec::new();
        for f in &frames {
            let before = buf.len();
            f.encode(&mut buf);
            assert_eq!(buf.len() - before, f.wire_len(), "wire_len of {f:?}");
        }
        assert_eq!(Frame::decode_all(&buf), Some(frames));
    }

    #[test]
    fn simple_frames_roundtrip() {
        roundtrip(vec![
            Frame::Ping,
            Frame::Crypto {
                offset: 0,
                data: vec![1, 2, 3],
            },
            Frame::NewToken { token: vec![9; 32] },
            Frame::HandshakeDone,
            Frame::ConnectionClose {
                error_code: 0,
                reason: b"bye".to_vec(),
            },
        ]);
    }

    #[test]
    fn padding_merges() {
        roundtrip(vec![Frame::Padding(100)]);
        let mut buf = vec![0u8; 10];
        buf.push(0x01);
        assert_eq!(
            Frame::decode_all(&buf),
            Some(vec![Frame::Padding(10), Frame::Ping])
        );
    }

    #[test]
    fn single_range_ack() {
        roundtrip(vec![Frame::Ack {
            ranges: vec![(7, 3)],
            delay: 25,
        }]);
        roundtrip(vec![Frame::Ack {
            ranges: vec![(0, 0)],
            delay: 0,
        }]);
    }

    #[test]
    fn multi_range_ack() {
        // Acked: 10-8, 5-5, 2-0.
        roundtrip(vec![Frame::Ack {
            ranges: vec![(10, 8), (5, 5), (2, 0)],
            delay: 0,
        }]);
    }

    #[test]
    fn stream_frames_with_fin() {
        roundtrip(vec![
            Frame::Stream {
                id: 0,
                offset: 0,
                data: b"query".to_vec(),
                fin: true,
            },
            Frame::Stream {
                id: 4,
                offset: 100,
                data: vec![],
                fin: true,
            },
            Frame::Stream {
                id: 8,
                offset: 5,
                data: vec![7; 50],
                fin: false,
            },
        ]);
    }

    #[test]
    fn stream_without_length_takes_rest() {
        // Type 0x0C = OFF, no LEN: extends to end of payload.
        let mut buf = vec![0x0C];
        write_varint(&mut buf, 4); // id
        write_varint(&mut buf, 0); // offset
        buf.extend_from_slice(b"rest");
        assert_eq!(
            Frame::decode_all(&buf),
            Some(vec![Frame::Stream {
                id: 4,
                offset: 0,
                data: b"rest".to_vec(),
                fin: false
            }])
        );
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(Frame::decode_all(&[0xFF]), None); // unknown type
        assert_eq!(Frame::decode_all(&[0x06, 0x00]), None); // truncated crypto
        let mut buf = vec![0x06];
        write_varint(&mut buf, 0);
        write_varint(&mut buf, 100); // claims 100 bytes, has none
        assert_eq!(Frame::decode_all(&buf), None);
    }

    #[test]
    fn path_frames_roundtrip() {
        roundtrip(vec![
            Frame::PathChallenge([1, 2, 3, 4, 5, 6, 7, 8]),
            Frame::PathResponse([1, 2, 3, 4, 5, 6, 7, 8]),
            Frame::PathChallenge([0; 8]),
        ]);
        // Truncated probe data is malformed.
        assert_eq!(Frame::decode_all(&[0x1A, 1, 2, 3]), None);
        assert_eq!(Frame::decode_all(&[0x1B]), None);
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        // Path probes must elicit ACKs (RFC 9000 §9.3 probing packets).
        assert!(Frame::PathChallenge([0; 8]).is_ack_eliciting());
        assert!(Frame::PathResponse([0; 8]).is_ack_eliciting());
        assert!(Frame::Crypto {
            offset: 0,
            data: vec![]
        }
        .is_ack_eliciting());
        assert!(!Frame::Padding(1).is_ack_eliciting());
        assert!(!Frame::Ack {
            ranges: vec![(0, 0)],
            delay: 0
        }
        .is_ack_eliciting());
        assert!(!Frame::ConnectionClose {
            error_code: 0,
            reason: vec![]
        }
        .is_ack_eliciting());
    }
}
