//! The QUIC connection state machine and server endpoint.
//!
//! One [`QuicConnection`] is one 4-tuple. The embedded handshake reuses
//! the TLS 1.3 message model from [`crate::tls`] but carries the
//! messages in CRYPTO frames across the Initial/Handshake/1-RTT packet
//! number spaces, exactly like RFC 9001. Loss recovery is PTO-based
//! with a packet-reordering threshold, per RFC 9002, with the 1 s
//! initial timeout the paper cites.

use super::frame::Frame;
use super::packet::{Packet, PacketType, VersionNegotiation, CID_LEN};
use super::{draft_version, AMPLIFICATION_FACTOR, MIN_INITIAL_SIZE, PACKET_TAG_LEN, QUIC_V1};
use crate::tls::{HandshakeMessage, HandshakePayload, SessionTicket, TlsConfig, TlsVersion};
use doqlab_simnet::{Duration, SimRng, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// qlog packet-type label.
fn ptype_str(ptype: PacketType) -> &'static str {
    match ptype {
        PacketType::Initial => "initial",
        PacketType::Handshake => "handshake",
        PacketType::ZeroRtt => "0RTT",
        PacketType::OneRtt => "1RTT",
        PacketType::Retry => "retry",
    }
}

/// qlog packet-number-space label for an epoch index.
fn epoch_str(epoch: usize) -> &'static str {
    match epoch {
        EPOCH_INITIAL => "initial",
        EPOCH_HANDSHAKE => "handshake",
        _ => "application_data",
    }
}

/// Connection parameters.
#[derive(Debug, Clone)]
pub struct QuicConfig {
    /// Supported versions, preference order. Servers negotiate; clients
    /// dial with `initial_version`.
    pub versions: Vec<u32>,
    pub tls: TlsConfig,
    /// Initial probe timeout (RFC 9002: ~3x initial RTT ≈ 1 s).
    pub initial_pto: Duration,
    /// Idle timeout.
    pub max_idle: Duration,
    /// Server sends Retry to unvalidated clients (address validation
    /// before any state; costs 1 RTT).
    pub retry_required: bool,
    /// Server hands out a NEW_TOKEN after the handshake (the mechanism
    /// the paper's client reuses together with Session Resumption).
    pub issue_new_token: bool,
    /// Maximum UDP datagram size.
    pub max_datagram: usize,
}

impl Default for QuicConfig {
    fn default() -> Self {
        QuicConfig {
            versions: vec![
                QUIC_V1,
                draft_version(34),
                draft_version(32),
                draft_version(29),
            ],
            tls: TlsConfig::default(),
            initial_pto: Duration::from_secs(1),
            max_idle: Duration::from_secs(30),
            retry_required: false,
            issue_new_token: true,
            max_datagram: 1200,
        }
    }
}

/// Terminal connection errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuicError {
    NoCommonVersion,
    NoCommonAlpn,
    HandshakeFailed(&'static str),
    IdleTimeout,
    PeerClosed(u64),
    TooManyRetries,
    /// Path validation (RFC 9000 §8.2) exhausted its probe retries:
    /// the new path never echoed our PATH_CHALLENGE.
    PathValidationFailed,
}

const EPOCH_INITIAL: usize = 0;
const EPOCH_HANDSHAKE: usize = 1;
const EPOCH_APP: usize = 2;

/// Probe retransmissions before a path validation attempt is abandoned.
const PATH_PROBE_MAX_RETRIES: u32 = 5;

/// Offset-indexed send buffer with loss retransmission.
#[derive(Debug, Default)]
struct SendBuf {
    data: Vec<u8>,
    next: u64,
    retx: BTreeMap<u64, Vec<u8>>,
}

impl SendBuf {
    fn queue(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Next chunk to transmit (retransmissions first), at most `max`
    /// bytes.
    fn next_chunk(&mut self, max: usize) -> Option<(u64, Vec<u8>)> {
        if max == 0 {
            return None;
        }
        if let Some((&off, _)) = self.retx.first_key_value() {
            let chunk = self.retx.remove(&off).expect("peeked");
            if chunk.len() > max {
                self.retx.insert(off + max as u64, chunk[max..].to_vec());
                return Some((off, chunk[..max].to_vec()));
            }
            return Some((off, chunk));
        }
        let avail = self.data.len() as u64 - self.next;
        if avail == 0 {
            return None;
        }
        let n = (avail as usize).min(max);
        let off = self.next;
        let chunk = self.data[off as usize..off as usize + n].to_vec();
        self.next += n as u64;
        Some((off, chunk))
    }

    fn on_lost(&mut self, offset: u64, data: Vec<u8>) {
        self.retx.entry(offset).or_insert(data);
    }
}

/// Offset-indexed receive buffer with overlap trimming.
#[derive(Debug, Default)]
struct RecvBuf {
    segments: BTreeMap<u64, Vec<u8>>,
    next: u64,
    assembled: Vec<u8>,
}

impl RecvBuf {
    fn insert(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() || offset + data.len() as u64 <= self.next {
            return;
        }
        let (offset, data) = if offset < self.next {
            let skip = (self.next - offset) as usize;
            (self.next, &data[skip..])
        } else {
            (offset, data)
        };
        if offset == self.next {
            self.assembled.extend_from_slice(data);
            self.next += data.len() as u64;
            while let Some((&off, _)) = self.segments.first_key_value() {
                if off > self.next {
                    break;
                }
                let (off, seg) = self.segments.pop_first().expect("peeked");
                let skip = (self.next - off) as usize;
                if skip < seg.len() {
                    self.assembled.extend_from_slice(&seg[skip..]);
                    self.next += (seg.len() - skip) as u64;
                }
            }
        } else {
            self.segments.entry(offset).or_insert_with(|| data.to_vec());
        }
    }

    fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.assembled)
    }
}

/// A bidirectional stream.
#[derive(Debug, Default)]
struct Stream {
    send: SendBuf,
    /// FIN requested by the application.
    fin_queued: bool,
    /// Offset at which our FIN sits, once reserved.
    fin_offset: Option<u64>,
    fin_sent: bool,
    recv: RecvBuf,
    /// Final size signalled by the peer's FIN.
    rx_fin: Option<u64>,
    rx_fin_delivered: bool,
}

impl Stream {
    fn rx_complete(&self) -> bool {
        self.rx_fin.is_some_and(|f| self.recv.next >= f)
    }
}

#[derive(Debug)]
struct SentPacket {
    time: SimTime,
    ack_eliciting: bool,
    frames: Vec<Frame>,
}

#[derive(Debug, Default)]
struct Space {
    next_pn: u64,
    sent: BTreeMap<u64, SentPacket>,
    /// Every pn we have received (for ACK frames and dedup).
    received: BTreeSet<u64>,
    ack_owed: bool,
    crypto_tx: SendBuf,
    crypto_rx: RecvBuf,
    /// Contiguous handshake bytes not yet forming a complete message.
    hs_partial: Vec<u8>,
}

impl Space {
    /// Build descending ACK ranges from the received set.
    fn ack_ranges(&self) -> Vec<(u64, u64)> {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &pn in self.received.iter().rev() {
            match ranges.last_mut() {
                Some((_hi, lo)) if *lo == pn + 1 => *lo = pn,
                _ => ranges.push((pn, pn)),
            }
        }
        ranges
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Client,
    Server,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HsState {
    /// Client: CH sent. Server: waiting for CH.
    Initial,
    /// Server flight sent / being received.
    WaitFinished,
    Done,
    Failed,
}

/// A QUIC connection endpoint.
#[derive(Debug)]
pub struct QuicConnection {
    cfg: QuicConfig,
    role: Role,
    pub local: SocketAddr,
    pub remote: SocketAddr,
    version: u32,
    dcid: [u8; CID_LEN],
    scid: [u8; CID_LEN],
    spaces: [Space; 3],
    streams: BTreeMap<u64, Stream>,
    next_stream_id: u64,
    next_uni_stream_id: u64,
    /// Stream ids this endpoint opened (anything else is peer-opened).
    locally_opened: std::collections::HashSet<u64>,
    /// Streams opened by the peer not yet handed to the application.
    new_peer_streams: VecDeque<u64>,
    hs: HsState,
    established_at: Option<SimTime>,
    handshake_confirmed: bool,
    error: Option<QuicError>,
    close_queued: Option<u64>,
    close_sent: bool,
    draining: bool,

    // TLS-equivalent negotiation state.
    ticket: Option<SessionTicket>,
    alpn: Option<Vec<u8>>,
    tickets_rx: Vec<SessionTicket>,
    early_permitted: bool,
    early_accepted: Option<bool>,
    early_stream_frames: Vec<(u64, u64, Vec<u8>, bool)>,
    resumed: bool,

    // Address validation / amplification (server).
    validated: bool,
    bytes_received: usize,
    bytes_sent: usize,
    /// Token to include in our Initials (client).
    token: Option<Vec<u8>>,
    /// NEW_TOKEN received for *future* connections (client).
    new_token_rx: Option<Vec<u8>>,
    new_token_queued: bool,
    handshake_done_queued: bool,
    ping_queued: bool,

    // Path validation (RFC 9000 §8.2 / §9): state of the probe on the
    // current path after a rebind (client) or peer migration (server).
    /// Challenge data the peer must echo; `Some` while validating.
    path_challenge_pending: Option<[u8; 8]>,
    /// A PATH_CHALLENGE frame should go out in the next datagram.
    path_challenge_queued: bool,
    /// Echo owed for a PATH_CHALLENGE we received.
    path_response_queued: Option<[u8; 8]>,
    /// When to retransmit (or give up on) the outstanding probe.
    path_probe_deadline: Option<SimTime>,
    /// Probe retransmissions for the current validation attempt.
    path_probe_retries: u32,
    /// Monotonic count of paths this end has validated on; feeds the
    /// deterministic challenge data so successive probes differ.
    path_seq: u64,

    // Recovery.
    pto_backoff: u32,
    srtt: Option<Duration>,
    vn_done: bool,
    /// Client received Retry and restarted (at most once).
    retried: bool,
    last_activity: SimTime,
    idle_deadline: Option<SimTime>,
    pto_deadline: Option<SimTime>,
    /// Statistics: version negotiation round trips observed.
    pub vn_round_trips: u32,
}

impl QuicConnection {
    /// Dial: the caller picks the initial version (e.g. a remembered one
    /// from a previous connection) and may supply a session ticket and
    /// address-validation token from a previous connection.
    #[allow(clippy::too_many_arguments)]
    pub fn client(
        cfg: QuicConfig,
        local: SocketAddr,
        remote: SocketAddr,
        initial_version: u32,
        ticket: Option<SessionTicket>,
        token: Option<Vec<u8>>,
        rng: &mut SimRng,
        now: SimTime,
    ) -> Self {
        let mut c = QuicConnection::new(cfg, Role::Client, local, remote, initial_version, now);
        c.dcid = rng.next_u64().to_be_bytes();
        c.scid = rng.next_u64().to_be_bytes();
        c.ticket = ticket;
        c.token = token;
        c.start_handshake(now);
        c
    }

    fn server(
        cfg: QuicConfig,
        local: SocketAddr,
        remote: SocketAddr,
        version: u32,
        scid: [u8; CID_LEN],
        dcid: [u8; CID_LEN],
        now: SimTime,
    ) -> Self {
        let mut c = QuicConnection::new(cfg, Role::Server, local, remote, version, now);
        c.scid = scid;
        c.dcid = dcid;
        c
    }

    fn new(
        cfg: QuicConfig,
        role: Role,
        local: SocketAddr,
        remote: SocketAddr,
        version: u32,
        now: SimTime,
    ) -> Self {
        let max_idle = cfg.max_idle;
        QuicConnection {
            cfg,
            role,
            local,
            remote,
            version,
            dcid: [0; CID_LEN],
            scid: [0; CID_LEN],
            spaces: Default::default(),
            streams: BTreeMap::new(),
            next_stream_id: 0,
            next_uni_stream_id: 0,
            locally_opened: std::collections::HashSet::new(),
            new_peer_streams: VecDeque::new(),
            hs: HsState::Initial,
            established_at: None,
            handshake_confirmed: false,
            error: None,
            close_queued: None,
            close_sent: false,
            draining: false,
            ticket: None,
            alpn: None,
            tickets_rx: Vec::new(),
            early_permitted: false,
            early_accepted: None,
            early_stream_frames: Vec::new(),
            resumed: false,
            validated: role == Role::Client,
            bytes_received: 0,
            bytes_sent: 0,
            token: None,
            new_token_rx: None,
            new_token_queued: false,
            handshake_done_queued: false,
            ping_queued: false,
            path_challenge_pending: None,
            path_challenge_queued: false,
            path_response_queued: None,
            path_probe_deadline: None,
            path_probe_retries: 0,
            path_seq: 0,
            pto_backoff: 0,
            srtt: None,
            vn_done: false,
            retried: false,
            last_activity: now,
            idle_deadline: Some(now + max_idle),
            pto_deadline: None,
            vn_round_trips: 0,
        }
    }

    fn start_handshake(&mut self, now: SimTime) {
        let psk = self
            .ticket
            .clone()
            .filter(|t| t.is_valid_at(now) && t.version == TlsVersion::Tls13);
        self.early_permitted =
            self.cfg.tls.enable_0rtt && psk.as_ref().is_some_and(|t| t.allows_early_data);
        let ch = HandshakePayload::ClientHello {
            versions: vec![TlsVersion::Tls13],
            alpn: self.cfg.tls.alpn.clone(),
            psk,
            early_data: self.early_permitted,
            // ~100 bytes of QUIC transport parameters.
            pad: 100 + self.cfg.tls.extra_client_hello_pad,
        };
        let mut bytes = Vec::new();
        HandshakeMessage::new(ch).encode(&mut bytes);
        self.spaces[EPOCH_INITIAL].crypto_tx.queue(&bytes);
        let flight_len = bytes.len();
        sink::emit(now.as_nanos(), || Event::TlsFlightSent {
            flight: "client_hello",
            bytes: flight_len,
        });
    }

    // ---- public state ----------------------------------------------------

    pub fn is_established(&self) -> bool {
        self.hs == HsState::Done
    }

    pub fn established_at(&self) -> Option<SimTime> {
        self.established_at
    }

    pub fn error(&self) -> Option<&QuicError> {
        self.error.as_ref()
    }

    pub fn is_closed(&self) -> bool {
        self.draining
    }

    pub fn version(&self) -> u32 {
        self.version
    }

    pub fn negotiated_alpn(&self) -> Option<&[u8]> {
        self.alpn.as_deref()
    }

    /// The handshake resumed a TLS session (no certificate flight).
    pub fn is_resumption(&self) -> bool {
        self.resumed
    }

    pub fn early_data_accepted(&self) -> Option<bool> {
        self.early_accepted
    }

    /// Session tickets received from the server (drained).
    pub fn take_tickets(&mut self) -> Vec<SessionTicket> {
        std::mem::take(&mut self.tickets_rx)
    }

    /// Address-validation token for future connections (drained).
    pub fn take_new_token(&mut self) -> Option<Vec<u8>> {
        self.new_token_rx.take()
    }

    // ---- streams ----------------------------------------------------------

    /// Open a bidirectional stream (client ids 0, 4, 8, ...; server ids
    /// 1, 5, 9, ...).
    pub fn open_bi(&mut self) -> u64 {
        let base = if self.role == Role::Client { 0 } else { 1 };
        let id = self.next_stream_id * 4 + base;
        self.next_stream_id += 1;
        self.locally_opened.insert(id);
        self.streams.entry(id).or_default();
        id
    }

    /// Open a unidirectional stream (client ids 2, 6, ...; server ids
    /// 3, 7, ...) — HTTP/3 control streams ride on these.
    pub fn open_uni(&mut self) -> u64 {
        let base = if self.role == Role::Client { 2 } else { 3 };
        let id = self.next_uni_stream_id * 4 + base;
        self.next_uni_stream_id += 1;
        self.locally_opened.insert(id);
        self.streams.entry(id).or_default();
        id
    }

    /// Queue stream data. Before the handshake completes this is only
    /// transmitted when 0-RTT is permitted (otherwise it waits).
    pub fn stream_send(&mut self, id: u64, data: &[u8], fin: bool) {
        let stream = self.streams.entry(id).or_default();
        stream.send.queue(data);
        if fin {
            stream.fin_queued = true;
        }
    }

    /// Read assembled stream data; `bool` reports whether the peer
    /// finished the stream and everything has been delivered.
    pub fn stream_recv(&mut self, id: u64) -> (Vec<u8>, bool) {
        match self.streams.get_mut(&id) {
            Some(s) => {
                let complete = s.rx_complete();
                if complete {
                    s.rx_fin_delivered = true;
                }
                (s.recv.take(), complete)
            }
            None => (Vec::new(), false),
        }
    }

    /// Streams the peer opened since the last call.
    pub fn take_new_peer_streams(&mut self) -> Vec<u64> {
        self.new_peer_streams.drain(..).collect()
    }

    /// Begin closing with an application error code.
    pub fn close(&mut self, code: u64) {
        if self.close_queued.is_none() && !self.draining {
            self.close_queued = Some(code);
        }
    }

    // ---- connection migration (RFC 9000 §9) --------------------------------

    /// The client's local address changed (wifi→cellular style rebind):
    /// adopt the new address and start validating the new path. RTT and
    /// PTO state are reset because the old path's estimates say nothing
    /// about the new one (§9.4).
    pub fn rebind(&mut self, now: SimTime, new_local: SocketAddr) {
        self.local = new_local;
        sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
            state: "local_rebind",
        });
        self.begin_path_validation(now);
    }

    /// Server side of a migration: packets from an established
    /// connection arrived from a new 4-tuple. Adopt the new peer
    /// address, drop to the pre-validation amplification budget
    /// (§9.3.1: at most 3x received bytes until the path validates),
    /// and probe the new path.
    fn migrate_to(&mut self, now: SimTime, peer: SocketAddr) {
        self.remote = peer;
        self.validated = false;
        self.bytes_received = 0;
        self.bytes_sent = 0;
        sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
            state: "peer_migrated",
        });
        self.begin_path_validation(now);
    }

    fn begin_path_validation(&mut self, now: SimTime) {
        // Fresh path, fresh estimates (§9.4).
        self.srtt = None;
        self.pto_backoff = 0;
        self.path_seq += 1;
        // Deterministic challenge data — no RNG so runs that never
        // migrate stay byte-identical; successive probes still differ
        // via the path sequence number.
        let data = (u64::from_be_bytes(self.scid)
            ^ self.path_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .to_be_bytes();
        self.path_challenge_pending = Some(data);
        self.path_challenge_queued = true;
        self.path_probe_retries = 0;
        self.path_probe_deadline = Some(now + self.pto_base());
    }

    /// Outstanding path probe, if any: `(challenge, retries, deadline)`.
    /// Test/observability accessor.
    pub fn path_probe(&self) -> Option<([u8; 8], u32, SimTime)> {
        match (self.path_challenge_pending, self.path_probe_deadline) {
            (Some(data), Some(deadline)) => Some((data, self.path_probe_retries, deadline)),
            _ => None,
        }
    }

    // ---- datagram input ----------------------------------------------------

    pub fn handle_datagram(&mut self, now: SimTime, data: &[u8]) {
        if self.draining {
            return;
        }
        self.last_activity = now;
        self.idle_deadline = Some(now + self.cfg.max_idle);
        self.bytes_received += data.len();

        // Version negotiation (client only, once, before any other
        // packet from the server).
        if self.role == Role::Client && !self.vn_done {
            if let Some(vn) = VersionNegotiation::decode(data) {
                self.vn_done = true;
                self.vn_round_trips += 1;
                sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
                    state: "version_negotiation_received",
                });
                match self.cfg.versions.iter().find(|v| vn.supported.contains(v)) {
                    Some(&v) => self.restart_with_version(now, v),
                    None => {
                        self.error = Some(QuicError::NoCommonVersion);
                        self.draining = true;
                    }
                }
                return;
            }
        }
        let mut pos = 0;
        while pos < data.len() {
            let Some(pkt) = Packet::decode(data, &mut pos) else {
                break;
            };
            self.on_packet(now, pkt);
            if self.draining {
                return;
            }
        }
    }

    fn restart_with_version(&mut self, now: SimTime, version: u32) {
        self.version = version;
        self.spaces = Default::default();
        self.hs = HsState::Initial;
        self.pto_backoff = 0;
        self.pto_deadline = None;
        self.start_handshake(now);
    }

    fn on_packet(&mut self, now: SimTime, pkt: Packet) {
        let (ptype, size) = (ptype_str(pkt.ptype), pkt.payload.len());
        sink::emit(now.as_nanos(), || Event::QuicPacketReceived { ptype, size });
        metrics::count(Counter::QuicPacketsReceived, 1);
        // Retry (client): restart with the server's token.
        if pkt.ptype == PacketType::Retry {
            if self.role == Role::Client && !self.retried && self.hs == HsState::Initial {
                self.retried = true;
                sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
                    state: "retry_received",
                });
                self.token = Some(pkt.token);
                let v = self.version;
                self.restart_with_version(now, v);
            }
            return;
        }
        let epoch = match pkt.ptype {
            PacketType::Initial => EPOCH_INITIAL,
            PacketType::Handshake => EPOCH_HANDSHAKE,
            PacketType::ZeroRtt | PacketType::OneRtt => EPOCH_APP,
            PacketType::Retry => unreachable!(),
        };
        // A Handshake packet from the client proves address ownership.
        if self.role == Role::Server && pkt.ptype == PacketType::Handshake {
            self.validated = true;
        }
        // Learn the peer's source CID from its first long-header packet.
        if self.role == Role::Client
            && matches!(pkt.ptype, PacketType::Initial | PacketType::Handshake)
        {
            self.dcid = pkt.scid;
        }
        if !self.spaces[epoch].received.insert(pkt.packet_number) {
            return; // duplicate
        }
        let Some(frames) = Frame::decode_all(&pkt.payload) else {
            return;
        };
        let zero_rtt = pkt.ptype == PacketType::ZeroRtt;
        let mut ack_eliciting = false;
        for frame in frames {
            ack_eliciting |= frame.is_ack_eliciting();
            self.on_frame(now, epoch, zero_rtt, frame);
            if self.draining {
                return;
            }
        }
        if ack_eliciting {
            self.spaces[epoch].ack_owed = true;
        }
    }

    fn on_frame(&mut self, now: SimTime, epoch: usize, zero_rtt: bool, frame: Frame) {
        match frame {
            Frame::Padding(_) | Frame::Ping => {}
            Frame::Ack { ranges, .. } => self.on_ack(now, epoch, &ranges),
            Frame::Crypto { offset, data } => {
                self.spaces[epoch].crypto_rx.insert(offset, &data);
                self.process_crypto(now, epoch);
            }
            Frame::NewToken { token } => {
                if self.role == Role::Client {
                    self.new_token_rx = Some(token);
                }
            }
            Frame::Stream {
                id,
                offset,
                data,
                fin,
            } => {
                // 0-RTT stream data is dropped unless accepted.
                if zero_rtt && self.role == Role::Server && self.early_accepted != Some(true) {
                    return;
                }
                let known = self.streams.contains_key(&id);
                let stream = self.streams.entry(id).or_default();
                stream.recv.insert(offset, &data);
                if fin {
                    stream.rx_fin = Some(offset + data.len() as u64);
                }
                if !known && !self.locally_opened.contains(&id) {
                    self.new_peer_streams.push_back(id);
                }
            }
            Frame::ConnectionClose { error_code, .. } => {
                self.error.get_or_insert(QuicError::PeerClosed(error_code));
                self.draining = true;
            }
            Frame::HandshakeDone => {
                if self.role == Role::Client {
                    self.handshake_confirmed = true;
                    sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
                        state: "handshake_confirmed",
                    });
                }
            }
            Frame::PathChallenge(data) => {
                // Echo on the active path (§8.2.2). If a second
                // challenge arrives before the first echo leaves, only
                // the latest matters — the peer only tracks one probe.
                self.path_response_queued = Some(data);
            }
            Frame::PathResponse(data) => {
                // Only the exact outstanding challenge validates the
                // path; stale or corrupted echoes are ignored (§8.2.3).
                if self.path_challenge_pending == Some(data) {
                    let retries = self.path_probe_retries;
                    self.path_challenge_pending = None;
                    self.path_challenge_queued = false;
                    self.path_probe_deadline = None;
                    self.path_probe_retries = 0;
                    if self.role == Role::Server {
                        self.validated = true;
                    }
                    sink::emit(now.as_nanos(), || Event::QuicPathValidated { retries });
                    metrics::count(Counter::QuicPathValidated, 1);
                }
            }
        }
    }

    fn on_ack(&mut self, now: SimTime, epoch: usize, ranges: &[(u64, u64)]) {
        let largest = ranges.first().map(|r| r.0);
        let mut newly_acked = false;
        let mut rtt_sample = None;
        for &(hi, lo) in ranges {
            let space = &mut self.spaces[epoch];
            let acked: Vec<u64> = space.sent.range(lo..=hi).map(|(pn, _)| *pn).collect();
            for pn in acked {
                let sp = space.sent.remove(&pn).expect("ranged");
                newly_acked = true;
                if Some(pn) == largest && sp.ack_eliciting {
                    // RTT sample from the largest newly acked packet.
                    rtt_sample = Some(now - sp.time);
                }
            }
        }
        if let Some(rtt) = rtt_sample {
            let srtt = match self.srtt {
                None => rtt,
                Some(s) => (s * 7 + rtt) / 8,
            };
            self.srtt = Some(srtt);
            sink::emit(now.as_nanos(), || Event::CcMetricsUpdated {
                cwnd: None,
                ssthresh: None,
                srtt_ns: Some(srtt.as_nanos() as u64),
            });
        }
        if newly_acked {
            self.pto_backoff = 0;
        }
        // Packet-threshold loss detection: anything 3 packets below the
        // largest acked is lost.
        if let Some(largest) = largest {
            let lost: Vec<u64> = self.spaces[epoch]
                .sent
                .range(..largest.saturating_sub(2))
                .map(|(pn, _)| *pn)
                .collect();
            for pn in lost {
                let sp = self.spaces[epoch].sent.remove(&pn).expect("ranged");
                sink::emit(now.as_nanos(), || Event::QuicPacketLost {
                    ptype: epoch_str(epoch),
                    pn,
                });
                metrics::count(Counter::QuicPacketsLost, 1);
                self.requeue_lost_frames(epoch, sp.frames);
            }
        }
        self.rearm_pto(now);
    }

    fn requeue_lost_frames(&mut self, epoch: usize, frames: Vec<Frame>) {
        for f in frames {
            match f {
                Frame::Crypto { offset, data } => {
                    self.spaces[epoch].crypto_tx.on_lost(offset, data)
                }
                Frame::Stream {
                    id,
                    offset,
                    data,
                    fin,
                } => {
                    if let Some(s) = self.streams.get_mut(&id) {
                        s.send.on_lost(offset, data);
                        if fin {
                            s.fin_sent = false;
                        }
                    }
                }
                Frame::NewToken { .. } => self.new_token_queued = true,
                Frame::HandshakeDone => self.handshake_done_queued = true,
                Frame::PathChallenge(_) => {
                    // Re-queue only while the validation attempt is
                    // still live (not answered or abandoned since).
                    if self.path_challenge_pending.is_some() {
                        self.path_challenge_queued = true;
                    }
                }
                Frame::PathResponse(data) => self.path_response_queued = Some(data),
                Frame::Ping | Frame::Padding(_) | Frame::Ack { .. } => {}
                Frame::ConnectionClose { .. } => self.close_sent = false,
            }
        }
    }

    // ---- handshake --------------------------------------------------------

    fn process_crypto(&mut self, now: SimTime, epoch: usize) {
        let bytes = self.spaces[epoch].crypto_rx.take();
        self.spaces[epoch].hs_partial.extend_from_slice(&bytes);
        // Decode until a partial message remains (wait for more CRYPTO data).
        while let Some((msg, used)) = HandshakeMessage::decode(&self.spaces[epoch].hs_partial) {
            self.spaces[epoch].hs_partial.drain(..used);
            self.on_handshake_message(now, msg);
            if self.hs == HsState::Failed || self.draining {
                break;
            }
        }
    }

    fn on_handshake_message(&mut self, now: SimTime, msg: HandshakeMessage) {
        match (self.role, msg.payload) {
            (
                Role::Server,
                HandshakePayload::ClientHello {
                    versions,
                    alpn,
                    psk,
                    early_data,
                    ..
                },
            ) => {
                if self.hs != HsState::Initial {
                    return;
                }
                if !versions.contains(&TlsVersion::Tls13) {
                    return self.hs_fail("QUIC requires TLS 1.3");
                }
                let chosen = alpn.iter().find(|a| self.cfg.tls.alpn.contains(a)).cloned();
                if chosen.is_none() {
                    self.error = Some(QuicError::NoCommonAlpn);
                    self.close_queued = Some(0x178); // crypto error: no_application_protocol
                    self.hs = HsState::Failed;
                    return;
                }
                self.alpn = chosen.clone();
                let psk_ok = psk.as_ref().is_some_and(|t| {
                    t.server_id == self.cfg.tls.server_id
                        && t.is_valid_at(now)
                        && t.version == TlsVersion::Tls13
                        && chosen.as_deref() == Some(&t.alpn[..])
                });
                self.resumed = psk_ok;
                let early = psk_ok
                    && early_data
                    && self.cfg.tls.enable_0rtt
                    && psk.as_ref().is_some_and(|t| t.allows_early_data);
                self.early_accepted = Some(early);
                // SH in Initial; EE(+Cert+CV)+Fin in Handshake.
                self.queue_hs(
                    EPOCH_INITIAL,
                    HandshakePayload::ServerHello {
                        version: TlsVersion::Tls13,
                        resumed: psk_ok,
                    },
                );
                self.queue_hs(
                    EPOCH_HANDSHAKE,
                    HandshakePayload::EncryptedExtensions {
                        alpn: chosen,
                        early_data_accepted: early,
                    },
                );
                if !psk_ok {
                    self.queue_hs(
                        EPOCH_HANDSHAKE,
                        HandshakePayload::Certificate {
                            chain_len: self.cfg.tls.cert_chain_len,
                        },
                    );
                    self.queue_hs(EPOCH_HANDSHAKE, HandshakePayload::CertificateVerify);
                }
                self.queue_hs(EPOCH_HANDSHAKE, HandshakePayload::Finished);
                self.hs = HsState::WaitFinished;
            }
            (Role::Client, HandshakePayload::ServerHello { resumed, .. }) => {
                self.resumed = resumed;
            }
            (
                Role::Client,
                HandshakePayload::EncryptedExtensions {
                    alpn,
                    early_data_accepted,
                },
            ) => {
                self.alpn = alpn;
                if self.early_permitted {
                    self.early_accepted = Some(early_data_accepted);
                    sink::emit(now.as_nanos(), || Event::TlsEarlyData {
                        accepted: early_data_accepted,
                    });
                    metrics::count(
                        if early_data_accepted {
                            Counter::TlsEarlyDataAccepted
                        } else {
                            Counter::TlsEarlyDataRejected
                        },
                        1,
                    );
                    if !early_data_accepted {
                        // Replay 0-RTT stream data in 1-RTT.
                        let frames = std::mem::take(&mut self.early_stream_frames);
                        for (id, offset, data, fin) in frames {
                            if let Some(s) = self.streams.get_mut(&id) {
                                s.send.on_lost(offset, data);
                                if fin {
                                    s.fin_sent = false;
                                }
                            }
                        }
                    }
                }
            }
            (Role::Client, HandshakePayload::Certificate { .. })
            | (Role::Client, HandshakePayload::CertificateVerify) => {}
            (Role::Client, HandshakePayload::Finished) => {
                if self.hs != HsState::Initial {
                    return;
                }
                self.queue_hs(EPOCH_HANDSHAKE, HandshakePayload::Finished);
                self.hs = HsState::Done;
                self.established_at = Some(now);
                sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
                    state: "handshake_complete",
                });
                let resumed = self.resumed;
                sink::emit(now.as_nanos(), || Event::TlsHandshakeCompleted { resumed });
                metrics::count(Counter::QuicHandshakesCompleted, 1);
                metrics::count(Counter::TlsHandshakesCompleted, 1);
                if resumed {
                    metrics::count(Counter::TlsResumedHandshakes, 1);
                }
            }
            (Role::Server, HandshakePayload::Finished) => {
                if self.hs != HsState::WaitFinished {
                    return;
                }
                self.hs = HsState::Done;
                self.established_at = Some(now);
                self.validated = true;
                sink::emit(now.as_nanos(), || Event::QuicStateUpdated {
                    state: "handshake_complete",
                });
                let resumed = self.resumed;
                sink::emit(now.as_nanos(), || Event::TlsHandshakeCompleted { resumed });
                self.handshake_done_queued = true;
                if self.cfg.issue_new_token {
                    self.new_token_queued = true;
                }
                // Session ticket over 1-RTT CRYPTO.
                let ticket = SessionTicket {
                    server_id: self.cfg.tls.server_id,
                    version: TlsVersion::Tls13,
                    alpn: self.alpn.clone().unwrap_or_default(),
                    issued_at: now,
                    lifetime: self.cfg.tls.ticket_lifetime,
                    allows_early_data: self.cfg.tls.enable_0rtt,
                    opaque_len: 120,
                };
                self.queue_hs(EPOCH_APP, HandshakePayload::NewSessionTicket { ticket });
            }
            (Role::Client, HandshakePayload::NewSessionTicket { ticket }) => {
                self.tickets_rx.push(ticket);
            }
            _ => self.hs_fail("unexpected handshake message"),
        }
    }

    fn hs_fail(&mut self, what: &'static str) {
        self.error = Some(QuicError::HandshakeFailed(what));
        self.hs = HsState::Failed;
        self.close_queued = Some(0x100);
    }

    fn queue_hs(&mut self, epoch: usize, payload: HandshakePayload) {
        let mut bytes = Vec::new();
        HandshakeMessage::new(payload).encode(&mut bytes);
        self.spaces[epoch].crypto_tx.queue(&bytes);
    }

    // ---- timers -----------------------------------------------------------

    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.draining {
            return None;
        }
        [
            self.pto_deadline,
            self.idle_deadline,
            self.path_probe_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// PTO before exponential backoff — also the path-probe interval
    /// (a fixed interval keeps abandonment well inside the idle
    /// timeout; with the PTO backoff applied the fifth retry would
    /// land past `max_idle` and idle-close would mask the verdict).
    fn pto_base(&self) -> Duration {
        match self.srtt {
            Some(srtt) => srtt * 3,
            None => self.cfg.initial_pto,
        }
        .max(Duration::from_millis(10))
    }

    fn pto_duration(&self) -> Duration {
        self.pto_base() * 2u32.saturating_pow(self.pto_backoff).min(64)
    }

    fn rearm_pto(&mut self, now: SimTime) {
        let oldest = self
            .spaces
            .iter()
            .flat_map(|s| s.sent.values())
            .filter(|sp| sp.ack_eliciting)
            .map(|sp| sp.time)
            .min();
        self.pto_deadline = match oldest {
            Some(t) => Some((t + self.pto_duration()).max(now)),
            // RFC 9002 §6.2.2.1: a client keeps a PTO armed until the
            // handshake completes even with nothing ack-eliciting in
            // flight. Its ACK-only flights elicit no response, and the
            // server may be amplification-blocked after losing its
            // flight — without a client probe the handshake deadlocks.
            None if self.role == Role::Client && self.hs != HsState::Done => {
                Some(now + self.pto_duration())
            }
            None => None,
        };
    }

    /// Fire expired timers. Called from `poll_transmit`.
    fn handle_timers(&mut self, now: SimTime) {
        if let Some(idle) = self.idle_deadline {
            if now >= idle {
                self.error.get_or_insert(QuicError::IdleTimeout);
                self.draining = true;
                return;
            }
        }
        if let Some(pto) = self.pto_deadline {
            if now >= pto {
                self.pto_backoff += 1;
                let backoff = self.pto_backoff;
                sink::emit(now.as_nanos(), || Event::QuicPtoFired {
                    epoch: "all",
                    count: backoff,
                });
                metrics::count(Counter::QuicPtoFired, 1);
                if self.pto_backoff > 7 {
                    self.error.get_or_insert(QuicError::TooManyRetries);
                    self.draining = true;
                    return;
                }
                // Treat the oldest ack-eliciting packet in each armed
                // space as lost and resend its frames.
                for epoch in 0..3 {
                    let oldest = self.spaces[epoch]
                        .sent
                        .iter()
                        .find(|(_, sp)| sp.ack_eliciting)
                        .map(|(pn, _)| *pn);
                    if let Some(pn) = oldest {
                        let sp = self.spaces[epoch].sent.remove(&pn).expect("found");
                        self.requeue_lost_frames(epoch, sp.frames);
                    }
                }
                // A client with nothing ack-eliciting in flight still
                // probes: ACK-only packets sit in `sent` without ever
                // eliciting a response, so an emptiness check alone
                // would leave the handshake stuck.
                let eliciting_in_flight = self
                    .spaces
                    .iter()
                    .flat_map(|s| s.sent.values())
                    .any(|sp| sp.ack_eliciting);
                if !eliciting_in_flight && self.role == Role::Client && self.hs != HsState::Done {
                    self.ping_queued = true;
                }
                self.pto_deadline = Some(now + self.pto_duration());
            }
        }
        // Path-probe retransmission / abandonment (§8.2.4).
        if let Some(probe) = self.path_probe_deadline {
            if now >= probe && self.path_challenge_pending.is_some() {
                self.path_probe_retries += 1;
                if self.path_probe_retries > PATH_PROBE_MAX_RETRIES {
                    let retries = self.path_probe_retries;
                    self.path_challenge_pending = None;
                    self.path_challenge_queued = false;
                    self.path_probe_deadline = None;
                    sink::emit(now.as_nanos(), || Event::QuicPathAbandoned { retries });
                    metrics::count(Counter::QuicPathAbandoned, 1);
                    // The probed path is the only one we have (the old
                    // 4-tuple is gone), so abandoning it ends the
                    // connection.
                    self.error.get_or_insert(QuicError::PathValidationFailed);
                    self.draining = true;
                    return;
                }
                self.path_challenge_queued = true;
                self.path_probe_deadline = Some(now + self.pto_base());
            }
        }
    }

    // ---- output -----------------------------------------------------------

    /// Build all datagrams that should be transmitted now.
    pub fn poll_transmit(&mut self, now: SimTime) -> Vec<Vec<u8>> {
        if self.draining {
            return Vec::new();
        }
        self.handle_timers(now);
        if self.draining {
            return Vec::new();
        }
        let mut datagrams = Vec::new();
        // Amplification budget (servers, pre-validation).
        let mut budget = if self.validated {
            usize::MAX
        } else {
            (AMPLIFICATION_FACTOR * self.bytes_received).saturating_sub(self.bytes_sent)
        };
        for _ in 0..64 {
            if budget < 64 {
                break; // not even room for a minimal packet
            }
            let dgram = self.build_datagram(now, budget.min(self.cfg.max_datagram));
            if dgram.is_empty() {
                break;
            }
            budget = budget.saturating_sub(dgram.len());
            self.bytes_sent += dgram.len();
            datagrams.push(dgram);
        }
        self.rearm_pto(now);
        datagrams
    }

    /// Assemble one datagram of at most `budget` bytes; empty if there
    /// is nothing to send.
    fn build_datagram(&mut self, now: SimTime, budget: usize) -> Vec<u8> {
        // Per-epoch long-header overhead (header + pn + tag), generous.
        const LONG_OVERHEAD: usize = 1 + 4 + 2 + 2 * CID_LEN + 8 + 4 + PACKET_TAG_LEN;
        const SHORT_OVERHEAD: usize = 1 + CID_LEN + 4 + PACKET_TAG_LEN;
        let mut parts: Vec<(PacketType, Vec<Frame>)> = Vec::new();
        let mut remaining = budget;
        let mut contains_initial = false;
        let mut initial_ack_eliciting = false;

        // CONNECTION_CLOSE preempts everything.
        if let Some(code) = self.close_queued {
            if !self.close_sent {
                self.close_sent = true;
                let epoch_type = if self.is_established() {
                    PacketType::OneRtt
                } else {
                    PacketType::Initial
                };
                let frames = vec![Frame::ConnectionClose {
                    error_code: code,
                    reason: Vec::new(),
                }];
                let mut out = Vec::new();
                self.encode_packet(epoch_type, frames, &mut out);
                let epoch = if epoch_type == PacketType::OneRtt {
                    EPOCH_APP
                } else {
                    EPOCH_INITIAL
                };
                let (pn, size) = (self.spaces[epoch].next_pn - 1, out.len());
                sink::emit(now.as_nanos(), || Event::QuicPacketSent {
                    ptype: ptype_str(epoch_type),
                    pn,
                    size,
                });
                metrics::count(Counter::QuicPacketsSent, 1);
                self.draining = true;
                return out;
            }
            return Vec::new();
        }

        // Initial + Handshake epochs: ACKs then CRYPTO.
        for (epoch, ptype) in [
            (EPOCH_INITIAL, PacketType::Initial),
            (EPOCH_HANDSHAKE, PacketType::Handshake),
        ] {
            if remaining < LONG_OVERHEAD + 8 {
                break;
            }
            let mut frames = Vec::new();
            if self.spaces[epoch].ack_owed {
                let ranges = self.spaces[epoch].ack_ranges();
                if !ranges.is_empty() {
                    frames.push(Frame::Ack { ranges, delay: 0 });
                }
                self.spaces[epoch].ack_owed = false;
            }
            let mut frame_budget =
                remaining - LONG_OVERHEAD - frames.iter().map(|f| f.wire_len()).sum::<usize>();
            while frame_budget > 8 {
                let max_chunk = frame_budget - 8; // frame header slack
                let Some((offset, data)) = self.spaces[epoch].crypto_tx.next_chunk(max_chunk)
                else {
                    break;
                };
                let f = Frame::Crypto { offset, data };
                frame_budget -= f.wire_len().min(frame_budget);
                frames.push(f);
            }
            if self.ping_queued && epoch == EPOCH_INITIAL && frames.is_empty() {
                self.ping_queued = false;
                frames.push(Frame::Ping);
            }
            if !frames.is_empty() {
                if ptype == PacketType::Initial {
                    contains_initial = true;
                    initial_ack_eliciting |= frames.iter().any(|f| f.is_ack_eliciting());
                }
                remaining -= LONG_OVERHEAD + frames.iter().map(|f| f.wire_len()).sum::<usize>();
                parts.push((ptype, frames));
            }
        }

        // Application epoch: 1-RTT once keys exist — for a server that
        // is right after sending its Finished (0.5-RTT data, which is
        // what lets a 0-RTT DNS query be answered in the server's first
        // flight) — and 0-RTT for a resuming client before that.
        let can_send_1rtt = match self.role {
            Role::Client => self.is_established(),
            Role::Server => matches!(self.hs, HsState::WaitFinished | HsState::Done),
        };
        let app_ptype = if !parts.is_empty() {
            // Keep 1-RTT/0-RTT data out of datagrams carrying
            // Initial/Handshake packets: those are the handshake phase
            // on the wire (client Initials are padded to 1200 bytes),
            // and application data follows in the next datagram of this
            // same poll — matching how deployed stacks flush flights.
            None
        } else if can_send_1rtt {
            Some(PacketType::OneRtt)
        } else if self.role == Role::Client && self.early_permitted && self.early_accepted.is_none()
        {
            Some(PacketType::ZeroRtt)
        } else {
            None
        };
        if let Some(ptype) = app_ptype {
            let overhead = if ptype == PacketType::OneRtt {
                SHORT_OVERHEAD
            } else {
                LONG_OVERHEAD
            };
            if remaining >= overhead + 8 {
                let mut frames = Vec::new();
                let mut frame_budget = remaining - overhead;
                if ptype == PacketType::OneRtt {
                    if self.spaces[EPOCH_APP].ack_owed {
                        let ranges = self.spaces[EPOCH_APP].ack_ranges();
                        if !ranges.is_empty() {
                            frames.push(Frame::Ack { ranges, delay: 0 });
                        }
                        self.spaces[EPOCH_APP].ack_owed = false;
                    }
                    if self.handshake_done_queued {
                        self.handshake_done_queued = false;
                        frames.push(Frame::HandshakeDone);
                    }
                    if self.new_token_queued && self.role == Role::Server {
                        self.new_token_queued = false;
                        frames.push(Frame::NewToken {
                            token: make_token(self.cfg.tls.server_id, self.remote),
                        });
                    }
                    if let Some(data) = self.path_response_queued.take() {
                        frames.push(Frame::PathResponse(data));
                    }
                    if self.path_challenge_queued {
                        self.path_challenge_queued = false;
                        let data = self.path_challenge_pending.expect("queued implies pending");
                        frames.push(Frame::PathChallenge(data));
                        let retry = self.path_probe_retries;
                        sink::emit(now.as_nanos(), || Event::QuicPathChallenge { retry });
                        metrics::count(Counter::QuicPathChallenges, 1);
                    }
                    frame_budget = frame_budget
                        .saturating_sub(frames.iter().map(|f| f.wire_len()).sum::<usize>());
                    // Post-handshake CRYPTO (session tickets).
                    while frame_budget > 8 {
                        let Some((offset, data)) = self.spaces[EPOCH_APP]
                            .crypto_tx
                            .next_chunk(frame_budget - 8)
                        else {
                            break;
                        };
                        let f = Frame::Crypto { offset, data };
                        frame_budget = frame_budget.saturating_sub(f.wire_len());
                        frames.push(f);
                    }
                }
                // Stream data.
                let ids: Vec<u64> = self.streams.keys().copied().collect();
                for id in ids {
                    if frame_budget <= 12 {
                        break;
                    }
                    loop {
                        if frame_budget <= 12 {
                            break;
                        }
                        let stream = self.streams.get_mut(&id).expect("listed");
                        let chunk = stream.send.next_chunk(frame_budget - 12);
                        match chunk {
                            Some((offset, data)) => {
                                let end = offset + data.len() as u64;
                                let fin = stream.fin_queued && end == stream.send.data.len() as u64;
                                if fin {
                                    stream.fin_offset = Some(end);
                                    stream.fin_sent = true;
                                }
                                let f = Frame::Stream {
                                    id,
                                    offset,
                                    data: data.clone(),
                                    fin,
                                };
                                frame_budget = frame_budget.saturating_sub(f.wire_len());
                                if ptype == PacketType::ZeroRtt {
                                    self.early_stream_frames.push((id, offset, data, fin));
                                }
                                frames.push(f);
                            }
                            None => {
                                // A bare FIN (no data left to carry it).
                                let stream = self.streams.get_mut(&id).expect("listed");
                                if stream.fin_queued && !stream.fin_sent {
                                    let end = stream.send.data.len() as u64;
                                    stream.fin_offset = Some(end);
                                    stream.fin_sent = true;
                                    let f = Frame::Stream {
                                        id,
                                        offset: end,
                                        data: Vec::new(),
                                        fin: true,
                                    };
                                    frame_budget = frame_budget.saturating_sub(f.wire_len());
                                    frames.push(f);
                                }
                                break;
                            }
                        }
                    }
                }
                if !frames.is_empty() {
                    parts.push((ptype, frames));
                }
            }
        }

        if parts.is_empty() {
            return Vec::new();
        }
        // Datagrams with client Initials, or ack-eliciting Initials
        // from either role, are padded to 1200 bytes (§14.1).
        if contains_initial && (self.role == Role::Client || initial_ack_eliciting) {
            let token_len = self.token.as_ref().map_or(0, |t| t.len());
            let exact = |ptype: PacketType, payload: usize, token_len: usize| -> usize {
                match ptype {
                    PacketType::OneRtt => 1 + CID_LEN + 4 + payload + PACKET_TAG_LEN,
                    _ => {
                        let mut n = 1 + 4 + 1 + CID_LEN + 1 + CID_LEN;
                        if ptype == PacketType::Initial {
                            n += super::varint::varint_len(token_len as u64) + token_len;
                        }
                        let length = 4 + payload + PACKET_TAG_LEN;
                        n + super::varint::varint_len(length as u64) + length
                    }
                }
            };
            let size: usize = parts
                .iter()
                .map(|(ptype, frames)| {
                    let tl = if *ptype == PacketType::Initial {
                        token_len
                    } else {
                        0
                    };
                    exact(*ptype, frames.iter().map(|f| f.wire_len()).sum(), tl)
                })
                .sum();
            let target = MIN_INITIAL_SIZE.min(budget);
            if size < target {
                // Pad inside the Initial packet; adding padding can grow
                // the length varint, so add then shrink to hit the
                // target exactly.
                if let Some((_, frames)) = parts.iter_mut().find(|(t, _)| *t == PacketType::Initial)
                {
                    frames.push(Frame::Padding(target - size));
                }
                let current: usize = parts
                    .iter()
                    .map(|(ptype, frames)| {
                        let tl = if *ptype == PacketType::Initial {
                            token_len
                        } else {
                            0
                        };
                        exact(*ptype, frames.iter().map(|f| f.wire_len()).sum(), tl)
                    })
                    .sum();
                if current > target {
                    if let Some((_, frames)) =
                        parts.iter_mut().find(|(t, _)| *t == PacketType::Initial)
                    {
                        if let Some(Frame::Padding(n)) = frames.last_mut() {
                            *n = n.saturating_sub(current - target);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (ptype, frames) in parts {
            self.encode_packet_tracked(now, ptype, frames, &mut out);
        }
        out
    }

    fn encode_packet(&mut self, ptype: PacketType, frames: Vec<Frame>, out: &mut Vec<u8>) {
        let epoch = match ptype {
            PacketType::Initial => EPOCH_INITIAL,
            PacketType::Handshake => EPOCH_HANDSHAKE,
            _ => EPOCH_APP,
        };
        let pn = self.spaces[epoch].next_pn;
        self.spaces[epoch].next_pn += 1;
        let mut payload = Vec::new();
        for f in &frames {
            f.encode(&mut payload);
        }
        let mut pkt = Packet::new(ptype, self.version, self.dcid, self.scid, pn, payload);
        if ptype == PacketType::Initial {
            if let Some(token) = &self.token {
                pkt.token = token.clone();
            }
        }
        pkt.encode(out);
    }

    fn encode_packet_tracked(
        &mut self,
        now: SimTime,
        ptype: PacketType,
        frames: Vec<Frame>,
        out: &mut Vec<u8>,
    ) {
        let epoch = match ptype {
            PacketType::Initial => EPOCH_INITIAL,
            PacketType::Handshake => EPOCH_HANDSHAKE,
            _ => EPOCH_APP,
        };
        let pn = self.spaces[epoch].next_pn;
        let ack_eliciting = frames.iter().any(|f| f.is_ack_eliciting());
        let before = out.len();
        self.encode_packet(ptype, frames.clone(), out);
        let size = out.len() - before;
        sink::emit(now.as_nanos(), || Event::QuicPacketSent {
            ptype: ptype_str(ptype),
            pn,
            size,
        });
        metrics::count(Counter::QuicPacketsSent, 1);
        if ack_eliciting {
            self.spaces[epoch].sent.insert(
                pn,
                SentPacket {
                    time: now,
                    ack_eliciting,
                    frames,
                },
            );
            if self.pto_deadline.is_none() {
                self.pto_deadline = Some(now + self.pto_duration());
            }
        }
    }
}

/// Construct an address-validation token bound to a server identity and
/// client IP.
pub fn make_token(server_id: u64, client: SocketAddr) -> Vec<u8> {
    let mut t = vec![0x54, 0x4F, 0x4B, 0x31]; // "TOK1"
    t.extend_from_slice(&server_id.to_be_bytes());
    t.extend_from_slice(&client.ip.0.to_be_bytes());
    t.extend_from_slice(&[0u8; 16]); // modelled integrity tag
    t
}

fn token_valid(token: &[u8], server_id: u64, client: SocketAddr) -> bool {
    token.len() == 32
        && token[0..4] == [0x54, 0x4F, 0x4B, 0x31]
        && token[4..12] == server_id.to_be_bytes()
        && token[12..16] == client.ip.0.to_be_bytes()
}

/// A QUIC server endpoint: demultiplexes datagrams by source address,
/// answers unsupported versions (including the version-0 scan probe)
/// with Version Negotiation, and optionally enforces Retry-based
/// address validation.
#[derive(Debug)]
pub struct QuicServer {
    cfg: QuicConfig,
    pub local: SocketAddr,
    conns: HashMap<SocketAddr, QuicConnection>,
}

impl QuicServer {
    pub fn new(local: SocketAddr, cfg: QuicConfig) -> Self {
        QuicServer {
            local,
            cfg,
            conns: HashMap::new(),
        }
    }

    /// Handle a datagram from `src`; immediate stateless responses
    /// (Version Negotiation, Retry) are returned directly.
    pub fn handle_datagram(
        &mut self,
        now: SimTime,
        src: SocketAddr,
        data: &[u8],
    ) -> Vec<(SocketAddr, Vec<u8>)> {
        if let Some(conn) = self.conns.get_mut(&src) {
            conn.handle_datagram(now, data);
            return Vec::new();
        }
        // New 4-tuple carrying a short-header packet: an established
        // connection's peer migrated (RFC 9000 §9). Match it to a
        // connection by destination CID and rebind the 4-tuple.
        let Some(version) = Packet::peek_long_header_version(data) else {
            self.migrate(now, src, data);
            return Vec::new();
        };
        if !self.cfg.versions.contains(&version) {
            // Version Negotiation — stateless, no connection created.
            // This is also the response to the paper's version-0 probe.
            let mut pos = 0;
            let (dcid, scid) = match Packet::decode(data, &mut pos) {
                Some(p) => (p.dcid, p.scid),
                None => ([0u8; CID_LEN], [0u8; CID_LEN]),
            };
            let vn = VersionNegotiation {
                dcid: scid,
                scid: dcid,
                supported: self.cfg.versions.clone(),
            };
            return vec![(src, vn.encode())];
        }
        let mut pos = 0;
        let Some(pkt) = Packet::decode(data, &mut pos) else {
            return Vec::new();
        };
        if pkt.ptype != PacketType::Initial {
            return Vec::new();
        }
        let has_valid_token = token_valid(&pkt.token, self.cfg.tls.server_id, src);
        if self.cfg.retry_required && !has_valid_token {
            let mut retry = Packet::new(
                PacketType::Retry,
                version,
                pkt.scid,
                pkt.dcid,
                0,
                Vec::new(),
            );
            retry.token = make_token(self.cfg.tls.server_id, src);
            let mut out = Vec::new();
            retry.encode(&mut out);
            return vec![(src, out)];
        }
        let mut conn = QuicConnection::server(
            self.cfg.clone(),
            self.local,
            src,
            version,
            // Server chooses its own CID; we derive it from the client's.
            {
                let mut scid = pkt.dcid;
                scid[0] ^= 0xFF;
                scid
            },
            pkt.scid,
            now,
        );
        conn.validated = has_valid_token;
        conn.handle_datagram(now, data);
        self.conns.insert(src, conn);
        Vec::new()
    }

    /// A short-header datagram arrived from an unknown 4-tuple: if its
    /// destination CID names a live connection, the peer migrated —
    /// rekey the connection to the new address, reset its amplification
    /// budget, and start path validation. Otherwise drop the datagram
    /// (stateless reset territory, which we do not model).
    fn migrate(&mut self, now: SimTime, src: SocketAddr, data: &[u8]) {
        if data.len() < 1 + CID_LEN || data[0] & 0xC0 != 0x40 {
            return;
        }
        let mut dcid = [0u8; CID_LEN];
        dcid.copy_from_slice(&data[1..1 + CID_LEN]);
        // CIDs are unique per connection, so at most one entry matches
        // and the HashMap scan order cannot affect the outcome.
        let Some(old) = self
            .conns
            .iter()
            .find(|(_, c)| c.scid == dcid && !c.is_closed())
            .map(|(peer, _)| *peer)
        else {
            return;
        };
        let mut conn = self.conns.remove(&old).expect("peer listed");
        conn.migrate_to(now, src);
        conn.handle_datagram(now, data);
        self.conns.insert(src, conn);
    }

    /// Poll every connection for outbound datagrams.
    pub fn poll_transmit(&mut self, now: SimTime) -> Vec<(SocketAddr, Vec<u8>)> {
        let mut out = Vec::new();
        for (peer, conn) in self.conns.iter_mut() {
            for dgram in conn.poll_transmit(now) {
                out.push((*peer, dgram));
            }
        }
        out
    }

    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conns.values().filter_map(|c| c.next_timeout()).min()
    }

    pub fn connection(&mut self, peer: SocketAddr) -> Option<&mut QuicConnection> {
        self.conns.get_mut(&peer)
    }

    pub fn connections(&mut self) -> impl Iterator<Item = (&SocketAddr, &mut QuicConnection)> {
        self.conns.iter_mut()
    }

    /// Drop drained connections.
    pub fn reap(&mut self) {
        self.conns.retain(|_, c| !c.is_closed());
    }

    pub fn len(&self) -> usize {
        self.conns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}
