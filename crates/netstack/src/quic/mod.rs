//! QUIC (RFC 9000/9001/9002 subset) — the transport under DoQ.
//!
//! Implemented, because the paper's results depend on them:
//!
//! * the combined transport+crypto handshake (1 RTT; with Session
//!   Resumption no certificate is sent, which keeps the server's first
//!   flight under the anti-amplification limit);
//! * the **3x anti-amplification limit** (RFC 9000 §8.1) — the effect
//!   that made ~40% of DoQ handshakes one RTT slower in the authors'
//!   preliminary study, reproduced here as an ablation;
//! * client Initial datagrams padded to **1200 bytes** (§14.1) — the
//!   reason DoQ's handshake transfers ~2x the bytes of DoT/DoH in
//!   Table 1;
//! * **Version Negotiation** (§6), including the version-0 probe the
//!   paper's ZMap scan uses to find QUIC endpoints statelessly;
//! * **Retry / NEW_TOKEN address validation** (§8): tokens from a
//!   previous connection ride in the next Initial, as the DoQ RFC
//!   recommends in union with Session Resumption;
//! * client-initiated bidirectional **streams** (one DNS query each,
//!   per RFC 9250), CRYPTO/ACK/STREAM frames with offset reassembly,
//!   and PTO-based loss recovery with a 1 s initial timeout.
//!
//! Header protection and packet AEAD are modelled as the 16-byte tag
//! they add to every protected packet (DESIGN.md).

mod connection;
mod frame;
mod packet;
mod varint;

pub use connection::{QuicConfig, QuicConnection, QuicError, QuicServer};
pub use frame::Frame;
pub use packet::{Packet as QuicPacket, PacketType, VersionNegotiation};
pub use varint::{read_varint, write_varint};

/// QUIC version 1 (RFC 9000).
pub const QUIC_V1: u32 = 0x0000_0001;

/// IETF draft version `n` (e.g. 29 -> 0xff00001d).
pub const fn draft_version(n: u8) -> u32 {
    0xff00_0000 | n as u32
}

/// Minimum client Initial datagram size (RFC 9000 §14.1).
pub const MIN_INITIAL_SIZE: usize = 1200;

/// Anti-amplification factor (RFC 9000 §8.1).
pub const AMPLIFICATION_FACTOR: usize = 3;

/// Modelled AEAD tag length per protected packet.
pub const PACKET_TAG_LEN: usize = 16;
