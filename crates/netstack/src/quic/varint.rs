//! QUIC variable-length integers (RFC 9000 §16): the top two bits of
//! the first byte select a 1/2/4/8-byte encoding.

/// Append `v` in the shortest valid encoding. Panics above 2^62-1.
pub fn write_varint(out: &mut Vec<u8>, v: u64) {
    match v {
        0..=0x3F => out.push(v as u8),
        0x40..=0x3FFF => out.extend_from_slice(&((v as u16) | 0x4000).to_be_bytes()),
        0x4000..=0x3FFF_FFFF => out.extend_from_slice(&((v as u32) | 0x8000_0000).to_be_bytes()),
        0x4000_0000..=0x3FFF_FFFF_FFFF_FFFF => {
            out.extend_from_slice(&(v | 0xC000_0000_0000_0000).to_be_bytes())
        }
        _ => panic!("varint out of range"),
    }
}

/// Read a varint from `buf[*pos..]`, advancing `pos`. `None` if
/// truncated.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let first = *buf.get(*pos)?;
    let len = 1usize << (first >> 6);
    if *pos + len > buf.len() {
        return None;
    }
    let mut v = (first & 0x3F) as u64;
    for i in 1..len {
        v = (v << 8) | buf[*pos + i] as u64;
    }
    *pos += len;
    Some(v)
}

/// Encoded size of `v`.
pub fn varint_len(v: u64) -> usize {
    match v {
        0..=0x3F => 1,
        0x40..=0x3FFF => 2,
        0x4000..=0x3FFF_FFFF => 4,
        _ => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_examples() {
        // RFC 9000 §A.1 sample values.
        let cases: &[(u64, &[u8])] = &[
            (
                151_288_809_941_952_652,
                &[0xC2, 0x19, 0x7C, 0x5E, 0xFF, 0x14, 0xE8, 0x8C],
            ),
            (494_878_333, &[0x9D, 0x7F, 0x3E, 0x7D]),
            (15_293, &[0x7B, 0xBD]),
            (37, &[0x25]),
        ];
        for (v, wire) in cases {
            let mut out = Vec::new();
            write_varint(&mut out, *v);
            assert_eq!(&out[..], *wire);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), Some(*v));
            assert_eq!(pos, wire.len());
        }
    }

    #[test]
    fn boundaries_roundtrip() {
        for v in [
            0,
            0x3F,
            0x40,
            0x3FFF,
            0x4000,
            0x3FFF_FFFF,
            0x4000_0000,
            (1u64 << 62) - 1,
        ] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v));
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), Some(v));
        }
    }

    #[test]
    fn truncated_reads_fail() {
        let mut out = Vec::new();
        write_varint(&mut out, 0x4000);
        for cut in 0..out.len() {
            let mut pos = 0;
            assert_eq!(read_varint(&out[..cut], &mut pos), None);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_panics() {
        let mut out = Vec::new();
        write_varint(&mut out, 1 << 62);
    }
}
