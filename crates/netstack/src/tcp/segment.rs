//! TCP segment wire format (RFC 793 §3.1) with the option kinds a
//! modern stack emits, so that on-wire sizes match what the paper's
//! Table 1 measures (a SYN with MSS + SACK-permitted + timestamps +
//! window scale is 40 bytes; a data/ACK segment with timestamps is 32).

use doqlab_simnet::{PayloadBuf, SocketAddr};

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub rst: bool,
    pub psh: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    fn to_bits(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_bits(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// TCP options. Only the kinds that affect size or behaviour in this
/// workspace are given structure; SACK blocks are not modelled (loss
/// recovery uses duplicate-ACK counting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Kind 2, 4 bytes.
    Mss(u16),
    /// Kind 4, 2 bytes ("SACK permitted").
    SackPermitted,
    /// Kind 8, 10 bytes.
    Timestamps { value: u32, echo: u32 },
    /// Kind 3, 3 bytes.
    WindowScale(u8),
    /// Kind 34 (TCP Fast Open, RFC 7413). An empty cookie is a request.
    FastOpenCookie(Vec<u8>),
}

impl TcpOption {
    fn encoded_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::WindowScale(_) => 3,
            TcpOption::FastOpenCookie(c) => 2 + c.len(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Mss(v) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&v.to_be_bytes());
            }
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps { value, echo } => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&value.to_be_bytes());
                out.extend_from_slice(&echo.to_be_bytes());
            }
            TcpOption::WindowScale(s) => out.extend_from_slice(&[3, 3, *s]),
            TcpOption::FastOpenCookie(c) => {
                out.push(34);
                out.push(2 + c.len() as u8);
                out.extend_from_slice(c);
            }
        }
    }
}

/// A TCP segment. `encode` produces the full header + options + payload
/// so that `Packet::ip_payload_len` is exactly the segment size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub options: Vec<TcpOption>,
    pub payload: Vec<u8>,
}

/// Base TCP header length.
pub const TCP_HEADER_LEN: usize = 20;

impl TcpSegment {
    /// Sequence space consumed: payload bytes, plus one for SYN and one
    /// for FIN.
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode into a pooled packet payload — the zero-allocation send
    /// path once the per-thread buffer pool is warm.
    pub fn encode_payload(&self) -> PayloadBuf {
        let mut out = PayloadBuf::new();
        self.encode_into(&mut out);
        out
    }

    /// Append the wire encoding to `out` (cleared first).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let opt_len: usize = self.options.iter().map(|o| o.encoded_len()).sum();
        // Options are padded to a 4-byte boundary with NOPs.
        let padded = (opt_len + 3) & !3;
        let data_offset_words = (TCP_HEADER_LEN + padded) / 4;
        out.reserve(TCP_HEADER_LEN + padded + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((data_offset_words as u8) << 4);
        out.push(self.flags.to_bits());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum (not modelled)
        out.extend_from_slice(&[0, 0]); // urgent pointer
        for opt in &self.options {
            opt.encode(out);
        }
        out.extend(std::iter::repeat_n(1u8, padded - opt_len)); // NOP padding
        out.extend_from_slice(&self.payload);
    }

    pub fn decode(buf: &[u8]) -> Option<TcpSegment> {
        if buf.len() < TCP_HEADER_LEN {
            return None;
        }
        let src_port = u16::from_be_bytes([buf[0], buf[1]]);
        let dst_port = u16::from_be_bytes([buf[2], buf[3]]);
        let seq = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let ack = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]);
        let header_len = ((buf[12] >> 4) as usize) * 4;
        if header_len < TCP_HEADER_LEN || header_len > buf.len() {
            return None;
        }
        let flags = TcpFlags::from_bits(buf[13]);
        let window = u16::from_be_bytes([buf[14], buf[15]]);
        let mut options = Vec::new();
        let mut i = TCP_HEADER_LEN;
        while i < header_len {
            match buf[i] {
                0 => break,  // end of options
                1 => i += 1, // NOP
                kind => {
                    if i + 1 >= header_len {
                        return None;
                    }
                    let len = buf[i + 1] as usize;
                    if len < 2 || i + len > header_len {
                        return None;
                    }
                    let body = &buf[i + 2..i + len];
                    match kind {
                        2 if body.len() == 2 => {
                            options.push(TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])));
                        }
                        4 if body.is_empty() => options.push(TcpOption::SackPermitted),
                        8 if body.len() == 8 => options.push(TcpOption::Timestamps {
                            value: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            echo: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        }),
                        3 if body.len() == 1 => options.push(TcpOption::WindowScale(body[0])),
                        34 => options.push(TcpOption::FastOpenCookie(body.to_vec())),
                        _ => {} // unknown options are skipped
                    }
                    i += len;
                }
            }
        }
        Some(TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            options,
            payload: buf[header_len..].to_vec(),
        })
    }

    /// Endpoint-swap helper for building replies.
    pub fn addresses(&self, from: SocketAddr, to: SocketAddr) -> (SocketAddr, SocketAddr) {
        (from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn() -> TcpSegment {
        TcpSegment {
            src_port: 40000,
            dst_port: 853,
            seq: 1000,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            options: vec![
                TcpOption::Mss(1460),
                TcpOption::SackPermitted,
                TcpOption::Timestamps { value: 1, echo: 0 },
                TcpOption::WindowScale(7),
            ],
            payload: vec![],
        }
    }

    #[test]
    fn syn_is_40_bytes() {
        // 20 header + 4+2+10+3=19 options padded to 20.
        assert_eq!(syn().encode().len(), 40);
    }

    #[test]
    fn data_segment_with_timestamps_is_32_plus_payload() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 5,
            ack: 6,
            flags: TcpFlags::ACK,
            window: 65535,
            options: vec![TcpOption::Timestamps { value: 9, echo: 8 }],
            payload: vec![0; 100],
        };
        assert_eq!(seg.encode().len(), 132);
    }

    #[test]
    fn roundtrip() {
        let seg = syn();
        let decoded = TcpSegment::decode(&seg.encode()).unwrap();
        assert_eq!(decoded, seg);
    }

    #[test]
    fn roundtrip_with_payload_and_fin() {
        let seg = TcpSegment {
            src_port: 9,
            dst_port: 10,
            seq: 0xFFFF_FFF0,
            ack: 77,
            flags: TcpFlags {
                fin: true,
                ack: true,
                psh: true,
                ..TcpFlags::default()
            },
            window: 1024,
            options: vec![TcpOption::Timestamps { value: 3, echo: 4 }],
            payload: b"data".to_vec(),
        };
        assert_eq!(TcpSegment::decode(&seg.encode()).unwrap(), seg);
    }

    #[test]
    fn tfo_cookie_roundtrip() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            options: vec![TcpOption::FastOpenCookie(vec![1, 2, 3, 4, 5, 6, 7, 8])],
            payload: b"early".to_vec(),
        };
        let back = TcpSegment::decode(&seg.encode()).unwrap();
        assert_eq!(back.options, seg.options);
        assert_eq!(back.payload, seg.payload);
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut seg = syn();
        assert_eq!(seg.seq_len(), 1);
        seg.flags = TcpFlags::ACK;
        seg.payload = vec![0; 10];
        assert_eq!(seg.seq_len(), 10);
        seg.flags = TcpFlags::FIN_ACK;
        assert_eq!(seg.seq_len(), 11);
    }

    #[test]
    fn decode_rejects_short_or_corrupt() {
        assert!(TcpSegment::decode(&[0; 10]).is_none());
        let mut buf = syn().encode();
        buf[12] = 0x20; // header length 8 < 20
        assert!(TcpSegment::decode(&buf).is_none());
        let mut buf2 = syn().encode();
        buf2[12] = 0xF0; // header length 60 > buffer
        assert!(TcpSegment::decode(&buf2).is_none());
    }

    #[test]
    fn decode_skips_unknown_options() {
        // kind 99, len 4.
        let mut raw = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
            options: vec![],
            payload: vec![],
        }
        .encode();
        raw[12] = 0x60; // 24-byte header
        raw.extend_from_slice(&[99, 4, 0, 0]);
        let seg = TcpSegment::decode(&raw).unwrap();
        assert!(seg.options.is_empty());
        assert!(seg.payload.is_empty());
    }
}
