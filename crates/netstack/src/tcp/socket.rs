//! The TCP connection state machine.
//!
//! Sans-I/O and poll-driven: callers feed segments in with
//! [`TcpSocket::on_segment`], drain output with [`TcpSocket::poll`], and
//! arm timers from [`TcpSocket::next_timeout`]. Sequence bookkeeping is
//! done in a 64-bit absolute space (position 0 is the SYN) and mapped to
//! 32-bit wire numbers, which keeps wrap-around handling in one place.
//!
//! Implemented: 3-way handshake, MSS-sized segmentation, out-of-order
//! reassembly, cumulative ACKs, RFC 6298 RTO with exponential backoff
//! (1 s initial — the transport-layer retry the paper contrasts with
//! Chromium's 5 s DoUDP application retry), fast retransmit on three
//! duplicate ACKs, slow start / congestion avoidance, FIN teardown and
//! TCP Fast Open. Not modelled: SACK scoreboards, urgent data, silly
//! window avoidance (transfers here are far too small to hit it).

use super::segment::{TcpFlags, TcpOption, TcpSegment};
use crate::congestion::CongestionController;
use doqlab_simnet::{Duration, SimTime, SocketAddr};
use doqlab_telemetry::metrics::{self, Counter};
use doqlab_telemetry::{sink, Event};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Connection parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    pub mss: usize,
    /// RFC 6298 initial retransmission timeout.
    pub initial_rto: Duration,
    /// Lower bound on the RTO once an RTT estimate exists.
    pub min_rto: Duration,
    /// Give up after this many consecutive retransmissions.
    pub max_retries: u32,
    /// TIME_WAIT linger (kept short: simulations are single-connection).
    pub time_wait: Duration,
    /// Client: attach data to the SYN when a Fast Open cookie is cached.
    /// Server: accept SYN data and issue cookies.
    pub enable_tfo: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_rto: Duration::from_secs(1),
            min_rto: Duration::from_millis(200),
            max_retries: 6,
            time_wait: Duration::from_millis(500),
            enable_tfo: false,
        }
    }
}

/// Why a socket entered its sticky failed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpFailure {
    /// The peer sent RST.
    PeerReset,
    /// `max_retries` consecutive retransmissions went unanswered.
    RetriesExhausted,
    /// The local application called [`TcpSocket::abort`].
    Aborted,
}

/// RFC 793 connection states (no simultaneous-open states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    Closing,
    TimeWait,
    CloseWait,
    LastAck,
}

/// RFC 6298 smoothed RTT estimator.
#[derive(Debug, Clone)]
struct RtoEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    min_rto: Duration,
}

impl RtoEstimator {
    fn new(initial: Duration, min_rto: Duration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: initial,
            min_rto,
        }
    }

    fn on_sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(rtt);
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let rto = self.srtt.unwrap() + self.rttvar * 4;
        self.rto = rto.max(self.min_rto);
    }

    fn backoff(&mut self) {
        self.rto = (self.rto * 2).min(Duration::from_secs(60));
    }

    fn current(&self) -> Duration {
        self.rto
    }
}

/// A TCP connection endpoint.
#[derive(Debug)]
pub struct TcpSocket {
    cfg: TcpConfig,
    state: TcpState,
    pub local: SocketAddr,
    pub remote: SocketAddr,

    // --- send side (absolute space: 0 = SYN, 1.. = data, FIN = 1+total)
    iss: u32,
    snd_una: u64,
    snd_nxt: u64,
    /// Highest sequence position ever sent (go-back-N rewinds move
    /// `snd_nxt` backwards; cumulative ACKs remain valid up to here).
    snd_max: u64,
    /// Bytes accepted from the application, in order, not yet acked.
    /// Front of the queue is absolute position `tx_base`.
    tx_buf: VecDeque<u8>,
    tx_base: u64,
    /// Total data bytes ever written.
    tx_written: u64,
    /// Application requested close; FIN goes out once data drains.
    tx_closing: bool,
    /// Absolute position of our FIN once reserved.
    fin_pos: Option<u64>,

    // --- receive side (absolute: 0 = peer SYN, 1.. = data)
    irs: u32,
    rcv_nxt: u64,
    rx_buf: Vec<u8>,
    /// Out-of-order payload keyed by absolute position.
    ooo: BTreeMap<u64, Vec<u8>>,
    /// Absolute position of the peer's FIN, if seen.
    peer_fin: Option<u64>,

    // --- timers / recovery
    rto: RtoEstimator,
    retransmit_at: Option<SimTime>,
    retries: u32,
    /// One outstanding RTT sample: (absolute seq end, send time).
    rtt_sample: Option<(u64, SimTime)>,
    dup_acks: u32,
    cc: CongestionController,
    peer_window: u64,
    time_wait_until: Option<SimTime>,

    // --- misc
    /// Pure ACKs owed to the peer (one per ACK-eliciting segment, so
    /// that duplicate ACKs actually reach the sender for fast
    /// retransmit).
    pending_acks: u32,
    need_syn: bool,
    established_at: Option<SimTime>,
    /// RST owed to the peer.
    reset_pending: bool,
    /// Sticky failure cause (reset by peer, retries exhausted, aborted).
    failure: Option<TcpFailure>,
    /// Client-side cached TFO cookie (present = may send data on SYN).
    tfo_cookie: Option<Vec<u8>>,
    /// Server: data accepted from a TFO SYN, delivered on accept.
    ts_echo: u32,
}

impl TcpSocket {
    /// Create a client socket; call [`TcpSocket::open`] to send the SYN.
    pub fn client(local: SocketAddr, remote: SocketAddr, iss: u32, cfg: TcpConfig) -> Self {
        Self::new(local, remote, iss, cfg, TcpState::Closed)
    }

    /// Create a server-side socket in LISTEN (used by [`TcpListener`]).
    pub fn server(local: SocketAddr, remote: SocketAddr, iss: u32, cfg: TcpConfig) -> Self {
        Self::new(local, remote, iss, cfg, TcpState::Listen)
    }

    fn new(
        local: SocketAddr,
        remote: SocketAddr,
        iss: u32,
        cfg: TcpConfig,
        state: TcpState,
    ) -> Self {
        let rto = RtoEstimator::new(cfg.initial_rto, cfg.min_rto);
        let mss = cfg.mss;
        TcpSocket {
            cfg,
            state,
            local,
            remote,
            iss,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            tx_buf: VecDeque::new(),
            tx_base: 1,
            tx_written: 0,
            tx_closing: false,
            fin_pos: None,
            irs: 0,
            rcv_nxt: 0,
            rx_buf: Vec::new(),
            ooo: BTreeMap::new(),
            peer_fin: None,
            rto,
            retransmit_at: None,
            retries: 0,
            rtt_sample: None,
            dup_acks: 0,
            cc: CongestionController::new(mss),
            peer_window: 65535,
            time_wait_until: None,
            pending_acks: 0,
            need_syn: false,
            established_at: None,
            reset_pending: false,
            failure: None,
            tfo_cookie: None,
            ts_echo: 0,
        }
    }

    /// Provide a cached Fast Open cookie before `open` (client only).
    pub fn set_tfo_cookie(&mut self, cookie: Vec<u8>) {
        self.tfo_cookie = Some(cookie);
    }

    /// Cookie learned from the server during this connection, if any.
    pub fn tfo_cookie(&self) -> Option<&[u8]> {
        self.tfo_cookie.as_deref()
    }

    /// Begin the active open. Data already queued via [`TcpSocket::send`]
    /// rides on the SYN when TFO is enabled and a cookie is cached.
    pub fn open(&mut self, _now: SimTime) {
        assert_eq!(self.state, TcpState::Closed, "open() on a used socket");
        self.state = TcpState::SynSent;
        self.need_syn = true;
        self.snd_nxt = 1; // SYN occupies position 0
    }

    pub fn state(&self) -> TcpState {
        self.state
    }

    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established
                | TcpState::FinWait1
                | TcpState::FinWait2
                | TcpState::CloseWait
                | TcpState::Closing
                | TcpState::LastAck
        )
    }

    /// Time the 3-way handshake completed at this endpoint.
    pub fn established_at(&self) -> Option<SimTime> {
        self.established_at
    }

    /// The connection was reset or retried out.
    pub fn is_reset(&self) -> bool {
        self.failure.is_some()
    }

    /// Why the socket failed, when it did — distinguishing a peer RST
    /// from retransmission exhaustion feeds the failure taxonomy of the
    /// measurement campaigns.
    pub fn failure(&self) -> Option<TcpFailure> {
        self.failure
    }

    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Peer sent FIN and all its data was delivered.
    pub fn peer_closed(&self) -> bool {
        matches!(self.state, TcpState::CloseWait | TcpState::LastAck)
            || (self.peer_fin.is_some_and(|f| self.rcv_nxt > f))
    }

    /// Half-closed by the peer and fully drained on our side: no
    /// unacknowledged data, nothing buffered for the application, no
    /// ACKs owed, no timer armed. Such a socket can never emit another
    /// segment on its own, so a server that will not write to it again
    /// may drop it without changing any observable traffic.
    pub fn is_quiescent_peer_closed(&self) -> bool {
        self.state == TcpState::CloseWait
            && !self.tx_closing
            && self.tx_buf.is_empty()
            && self.rx_buf.is_empty()
            && self.ooo.is_empty()
            && self.pending_acks == 0
            && !self.reset_pending
            && self.retransmit_at.is_none()
    }

    /// Whether the transmit side still accepts application data: false
    /// once [`TcpSocket::close`] or [`TcpSocket::abort`] was called, or
    /// the connection fully closed. Callers with data of their own
    /// (e.g. a TLS engine draining its output) check this instead of
    /// tripping the `send` assertion on a dying socket.
    pub fn can_send(&self) -> bool {
        !self.tx_closing && self.state != TcpState::Closed
    }

    /// Queue application data for transmission.
    pub fn send(&mut self, data: &[u8]) {
        assert!(!self.tx_closing, "send after close");
        self.tx_buf.extend(data);
        self.tx_written += data.len() as u64;
    }

    /// Take all readable bytes.
    pub fn recv(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.rx_buf)
    }

    pub fn has_rx_data(&self) -> bool {
        !self.rx_buf.is_empty()
    }

    /// Bytes queued locally but not yet acknowledged by the peer.
    pub fn tx_outstanding(&self) -> usize {
        self.tx_buf.len()
    }

    /// Graceful close: FIN is sent once queued data drains.
    pub fn close(&mut self) {
        if self.tx_closing {
            return;
        }
        self.tx_closing = true;
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            // During the handshake only mark the intent; the transition
            // happens once the connection establishes (half-open close).
            TcpState::SynSent | TcpState::SynReceived => {}
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => {}
        }
    }

    /// Hard reset: emit RST on next poll and drop all state.
    pub fn abort(&mut self) {
        if !matches!(self.state, TcpState::Closed | TcpState::Listen) {
            self.reset_pending = true;
            self.failure = Some(TcpFailure::Aborted);
        }
        self.state = TcpState::Closed;
        self.retransmit_at = None;
    }

    // ---- wire/absolute sequence mapping --------------------------------

    fn wire_seq(&self, abs: u64) -> u32 {
        self.iss.wrapping_add(abs as u32)
    }

    fn abs_from_wire_ack(&self, ack: u32) -> u64 {
        let base_wire = self.wire_seq(self.snd_una);
        self.snd_una + ack.wrapping_sub(base_wire) as u64
    }

    fn peer_abs(&self, seq: u32) -> u64 {
        // Positions are small in this workspace; a single wrap window
        // is enough.
        let base_wire = self.irs.wrapping_add(self.rcv_nxt as u32);
        let delta = seq.wrapping_sub(base_wire) as i32; // +/- 2^31 window
        (self.rcv_nxt as i64 + delta as i64).max(0) as u64
    }

    // ---- segment input --------------------------------------------------

    /// Process an incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        if seg.flags.rst {
            if self.state != TcpState::Closed {
                self.failure = Some(TcpFailure::PeerReset);
                self.state = TcpState::Closed;
                self.retransmit_at = None;
            }
            return;
        }
        if let Some(TcpOption::Timestamps { value, .. }) = seg
            .options
            .iter()
            .find(|o| matches!(o, TcpOption::Timestamps { .. }))
        {
            self.ts_echo = *value;
        }
        match self.state {
            TcpState::Closed => { /* drop; RST generation not needed */ }
            TcpState::Listen => self.on_listen_syn(now, seg),
            TcpState::SynSent => self.on_syn_sent(now, seg),
            _ => self.on_synchronized(now, seg),
        }
    }

    fn on_listen_syn(&mut self, now: SimTime, seg: &TcpSegment) {
        if !seg.flags.syn || seg.flags.ack {
            return;
        }
        self.irs = seg.seq;
        self.rcv_nxt = 1;
        self.apply_peer_mss(seg);
        self.state = TcpState::SynReceived;
        self.snd_nxt = 1;
        self.need_syn = true; // SYN-ACK
                              // TCP Fast Open (server side): accept SYN data when the client
                              // presented a cookie and we support TFO.
        if self.cfg.enable_tfo && !seg.payload.is_empty() {
            let has_cookie = seg
                .options
                .iter()
                .any(|o| matches!(o, TcpOption::FastOpenCookie(c) if !c.is_empty()));
            if has_cookie {
                self.rx_buf.extend_from_slice(&seg.payload);
                self.rcv_nxt += seg.payload.len() as u64;
                let data_len = seg.payload.len();
                sink::emit(now.as_nanos(), || Event::TcpFastOpen {
                    side: "server",
                    data_len,
                });
                metrics::count(Counter::TcpFastOpenServer, 1);
            }
        }
    }

    fn on_syn_sent(&mut self, now: SimTime, seg: &TcpSegment) {
        if !seg.flags.syn || !seg.flags.ack {
            return;
        }
        let ack_abs = self.abs_from_wire_ack(seg.ack);
        if ack_abs == 0 || ack_abs > self.snd_nxt {
            return; // unacceptable ACK
        }
        self.irs = seg.seq;
        self.rcv_nxt = 1;
        self.apply_peer_mss(seg);
        self.advance_snd_una(now, ack_abs);
        // Server may hand us a Fast Open cookie for next time.
        if let Some(TcpOption::FastOpenCookie(c)) = seg
            .options
            .iter()
            .find(|o| matches!(o, TcpOption::FastOpenCookie(_)))
        {
            if !c.is_empty() {
                self.tfo_cookie = Some(c.clone());
            }
        }
        self.state = TcpState::Established;
        self.established_at = Some(now);
        if self.tx_closing {
            self.state = TcpState::FinWait1;
        }
        self.pending_acks += 1;
        // SYN-ACK payload (TFO server response data) is regular stream
        // data starting at position 1.
        if !seg.payload.is_empty() {
            self.accept_payload(1, &seg.payload);
        }
    }

    fn on_synchronized(&mut self, now: SimTime, seg: &TcpSegment) {
        // Handshake completion for a passive opener.
        if self.state == TcpState::SynReceived && seg.flags.ack {
            let ack_abs = self.abs_from_wire_ack(seg.ack);
            if ack_abs >= 1 {
                self.state = TcpState::Established;
                self.established_at = Some(now);
                if self.tx_closing {
                    self.state = TcpState::FinWait1;
                }
            }
        }
        if seg.flags.ack {
            self.process_ack(now, seg);
        }
        if !seg.payload.is_empty() {
            let pos = self.peer_abs(seg.seq);
            self.accept_payload(pos, &seg.payload);
            self.pending_acks += 1;
        }
        if seg.flags.fin {
            let fin_pos = self.peer_abs(seg.seq) + seg.payload.len() as u64;
            self.peer_fin = Some(fin_pos);
            self.pending_acks += 1;
        }
        self.maybe_consume_peer_fin();
    }

    fn apply_peer_mss(&mut self, seg: &TcpSegment) {
        if let Some(TcpOption::Mss(m)) = seg.options.iter().find(|o| matches!(o, TcpOption::Mss(_)))
        {
            self.cfg.mss = self.cfg.mss.min(*m as usize);
        }
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let ack_abs = self.abs_from_wire_ack(seg.ack);
        self.peer_window = seg.window as u64;
        if ack_abs > self.snd_max {
            return; // acks something we never sent
        }
        if ack_abs > self.snd_una {
            self.dup_acks = 0;
            self.advance_snd_una(now, ack_abs);
        } else if self.snd_nxt > self.snd_una && seg.payload.is_empty() && !seg.flags.fin {
            // Duplicate ACK while data is outstanding.
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                let inflight = (self.snd_nxt - self.snd_una) as usize;
                self.fast_retransmit();
                sink::emit(now.as_nanos(), || Event::TcpRetransmit {
                    kind: "fast",
                    bytes: inflight,
                });
                metrics::count(Counter::TcpFastRetransmits, 1);
                self.emit_cc_metrics(now);
            }
        }
        // Our FIN acked?
        if let Some(fin) = self.fin_pos {
            if self.snd_una > fin {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.enter_time_wait(now),
                    TcpState::LastAck => self.state = TcpState::Closed,
                    _ => {}
                }
            }
        }
    }

    fn advance_snd_una(&mut self, now: SimTime, ack_abs: u64) {
        let newly = ack_abs - self.snd_una;
        // A cumulative ACK past a rewound snd_nxt confirms the data is
        // already delivered: skip re-sending it.
        self.snd_nxt = self.snd_nxt.max(ack_abs);
        // Pop acked data bytes (positions tx_base..) off the buffer.
        let data_acked_end = ack_abs.min(1 + self.tx_written);
        if data_acked_end > self.tx_base {
            let n = (data_acked_end - self.tx_base) as usize;
            self.tx_buf.drain(..n.min(self.tx_buf.len()));
            self.tx_base = data_acked_end;
        }
        self.snd_una = ack_abs;
        self.cc.on_ack(newly as usize);
        self.emit_cc_metrics(now);
        // RTT sample (Karn: samples are only armed on first transmission).
        if let Some((end, sent)) = self.rtt_sample {
            if ack_abs >= end {
                self.rto.on_sample(now - sent);
                self.rtt_sample = None;
            }
        }
        self.retries = 0;
        if self.snd_una == self.snd_nxt {
            self.retransmit_at = None;
        } else {
            self.retransmit_at = Some(now + self.rto.current());
        }
    }

    /// Trace the congestion state after a window change (observational
    /// only; `ssthresh` is elided until the first loss sets it).
    fn emit_cc_metrics(&self, now: SimTime) {
        if !sink::enabled() {
            return;
        }
        let cwnd = self.cc.window() as u64;
        let ssthresh = match self.cc.ssthresh() {
            usize::MAX => None,
            s => Some(s as u64),
        };
        sink::emit(now.as_nanos(), || Event::CcMetricsUpdated {
            cwnd: Some(cwnd),
            ssthresh,
            srtt_ns: None,
        });
    }

    fn fast_retransmit(&mut self) {
        let inflight = (self.snd_nxt - self.snd_una) as usize;
        self.cc.on_fast_retransmit(inflight);
        // Go-back-N from the first unacked byte: poll() rebuilds.
        self.rewind_to_una();
    }

    fn rewind_to_una(&mut self) {
        self.snd_nxt = self.snd_una;
        if self.snd_nxt == 0 {
            self.need_syn = true;
            self.snd_nxt = 1;
        }
        if let Some(fin) = self.fin_pos {
            if self.snd_nxt <= fin {
                self.fin_pos = None; // poll re-reserves and re-sends FIN
            }
        }
        self.rtt_sample = None; // Karn's algorithm
    }

    fn accept_payload(&mut self, pos: u64, payload: &[u8]) {
        if pos + payload.len() as u64 <= self.rcv_nxt {
            return; // complete duplicate
        }
        // Trim any prefix we already have.
        let (pos, payload) = if pos < self.rcv_nxt {
            let skip = (self.rcv_nxt - pos) as usize;
            (self.rcv_nxt, &payload[skip..])
        } else {
            (pos, payload)
        };
        if pos == self.rcv_nxt {
            self.rx_buf.extend_from_slice(payload);
            self.rcv_nxt += payload.len() as u64;
            // Drain contiguous out-of-order chunks.
            while let Some((&p, _)) = self.ooo.first_key_value() {
                if p > self.rcv_nxt {
                    break;
                }
                let (p, chunk) = self.ooo.pop_first().expect("peeked");
                let skip = (self.rcv_nxt - p) as usize;
                if skip < chunk.len() {
                    self.rx_buf.extend_from_slice(&chunk[skip..]);
                    self.rcv_nxt += (chunk.len() - skip) as u64;
                }
            }
        } else {
            self.ooo.entry(pos).or_insert_with(|| payload.to_vec());
        }
        self.maybe_consume_peer_fin();
    }

    fn maybe_consume_peer_fin(&mut self) {
        let Some(fin) = self.peer_fin else { return };
        if self.rcv_nxt != fin {
            return; // data still missing before the FIN
        }
        self.rcv_nxt = fin + 1;
        self.pending_acks += 1;
        match self.state {
            TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                // Our FIN not yet acked: simultaneous close.
                self.state = TcpState::Closing;
            }
            TcpState::FinWait2 => self.enter_time_wait_pending(),
            _ => {}
        }
        if self.tx_closing && self.state == TcpState::CloseWait {
            self.state = TcpState::LastAck;
        }
    }

    fn enter_time_wait_pending(&mut self) {
        // Actual deadline is set on the next poll (needs `now`).
        self.state = TcpState::TimeWait;
        self.time_wait_until = None;
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.time_wait_until = Some(now + self.cfg.time_wait);
    }

    // ---- output ----------------------------------------------------------

    /// Earliest instant this socket needs to run.
    pub fn next_timeout(&self) -> Option<SimTime> {
        let mut t = self.retransmit_at;
        if let Some(tw) = self.time_wait_until {
            t = Some(t.map_or(tw, |x| x.min(tw)));
        }
        t
    }

    fn make_segment(
        &self,
        flags: TcpFlags,
        abs_seq: u64,
        payload: Vec<u8>,
        now: SimTime,
    ) -> TcpSegment {
        let mut options = Vec::new();
        if flags.syn {
            options.push(TcpOption::Mss(self.cfg.mss as u16));
            options.push(TcpOption::SackPermitted);
            options.push(TcpOption::Timestamps {
                value: (now.as_nanos() / 1_000_000) as u32,
                echo: self.ts_echo,
            });
            options.push(TcpOption::WindowScale(7));
        } else {
            options.push(TcpOption::Timestamps {
                value: (now.as_nanos() / 1_000_000) as u32,
                echo: self.ts_echo,
            });
        }
        TcpSegment {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq: self.wire_seq(abs_seq),
            ack: if flags.ack {
                self.irs.wrapping_add(self.rcv_nxt as u32)
            } else {
                0
            },
            flags,
            window: 65535,
            options,
            payload,
        }
    }

    /// Produce all segments that should go on the wire now. Also fires
    /// the retransmission timer when `now` has passed it.
    pub fn poll(&mut self, now: SimTime) -> Vec<TcpSegment> {
        let mut out = Vec::new();
        if self.reset_pending && self.state == TcpState::Closed {
            // One RST, then silence.
            self.reset_pending = false;
            let mut seg = self.make_segment(TcpFlags::RST, self.snd_nxt, Vec::new(), now);
            seg.ack = 0;
            out.push(seg);
            return out;
        }
        // TIME_WAIT deadline may still need arming or firing.
        if self.state == TcpState::TimeWait {
            match self.time_wait_until {
                None => self.time_wait_until = Some(now + self.cfg.time_wait),
                Some(t) if now >= t => {
                    self.state = TcpState::Closed;
                    self.time_wait_until = None;
                }
                _ => {}
            }
        }
        // Retransmission timeout.
        if let Some(t) = self.retransmit_at {
            if now >= t {
                self.retries += 1;
                if self.retries > self.cfg.max_retries {
                    self.failure = Some(TcpFailure::RetriesExhausted);
                    self.state = TcpState::Closed;
                    self.retransmit_at = None;
                    return out;
                }
                let inflight = (self.snd_nxt - self.snd_una) as usize;
                self.cc.on_rto(inflight);
                self.rto.backoff();
                self.rewind_to_una();
                self.retransmit_at = None; // re-armed below when we send
                sink::emit(now.as_nanos(), || Event::TcpRetransmit {
                    kind: "rto",
                    bytes: inflight,
                });
                metrics::count(Counter::TcpRtoRetransmits, 1);
                self.emit_cc_metrics(now);
            }
        }
        // SYN / SYN-ACK.
        if self.need_syn {
            self.need_syn = false;
            let flags = match self.state {
                TcpState::SynSent => TcpFlags::SYN,
                TcpState::SynReceived => TcpFlags::SYN_ACK,
                // A rewind in an established state means the SYN was
                // already acked; skip.
                _ => TcpFlags {
                    syn: false,
                    ..TcpFlags::default()
                },
            };
            if flags.syn {
                let mut payload = Vec::new();
                let mut seg_flags = flags;
                // Client-side TFO: put queued data on the SYN.
                if self.state == TcpState::SynSent && self.cfg.enable_tfo {
                    if let Some(cookie) = &self.tfo_cookie {
                        if !cookie.is_empty() && !self.tx_buf.is_empty() {
                            let n = self.tx_buf.len().min(self.cfg.mss);
                            payload = self.tx_buf.iter().take(n).copied().collect();
                            seg_flags.psh = true;
                            sink::emit(now.as_nanos(), || Event::TcpFastOpen {
                                side: "client",
                                data_len: n,
                            });
                            metrics::count(Counter::TcpFastOpenClient, 1);
                            metrics::count(Counter::TfoSynData, 1);
                        }
                    }
                }
                let mut seg = self.make_segment(seg_flags, 0, payload.clone(), now);
                if self.cfg.enable_tfo && self.state == TcpState::SynSent {
                    // Send cookie if cached, else request one.
                    seg.options.push(TcpOption::FastOpenCookie(
                        self.tfo_cookie.clone().unwrap_or_default(),
                    ));
                } else if self.cfg.enable_tfo && self.state == TcpState::SynReceived {
                    // Issue a cookie to the client.
                    seg.options.push(TcpOption::FastOpenCookie(vec![0xC0; 8]));
                }
                out.push(seg);
                // SYN consumed position 0; any TFO payload follows it.
                self.snd_nxt = self.snd_nxt.max(1 + payload.len() as u64);
                self.snd_max = self.snd_max.max(self.snd_nxt);
                if self.rtt_sample.is_none() {
                    self.rtt_sample = Some((self.snd_nxt, now));
                }
            }
        }
        // Stream data. A TFO server may answer SYN-carried data before
        // the handshake completes (RFC 7413 §4.2): its response rides
        // the SYN-ACK flight instead of waiting a round trip for the
        // client's ACK — that saved RTT is the whole point of TFO.
        if matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        ) || (self.state == TcpState::SynReceived && self.cfg.enable_tfo)
        {
            let window = self
                .cc
                .window()
                .min(self.peer_window.max(1460) as usize * 128);
            loop {
                let inflight = (self.snd_nxt - self.snd_una) as usize;
                if inflight >= window {
                    break;
                }
                let data_end = 1 + self.tx_written;
                if self.snd_nxt >= data_end {
                    break;
                }
                let start = (self.snd_nxt - self.tx_base) as usize;
                let budget = (window - inflight).min(self.cfg.mss);
                let avail = self.tx_buf.len().saturating_sub(start);
                let n = avail.min(budget);
                if n == 0 {
                    break;
                }
                let payload: Vec<u8> = self.tx_buf.iter().skip(start).take(n).copied().collect();
                let last = start + n == self.tx_buf.len();
                let mut flags = TcpFlags::ACK;
                flags.psh = last;
                let seg = self.make_segment(flags, self.snd_nxt, payload, now);
                out.push(seg);
                if self.rtt_sample.is_none() {
                    self.rtt_sample = Some((self.snd_nxt + n as u64, now));
                }
                self.snd_nxt += n as u64;
                self.snd_max = self.snd_max.max(self.snd_nxt);
                self.pending_acks = 0;
            }
            // FIN once everything is out.
            if self.tx_closing
                && self.fin_pos.is_none()
                && self.snd_nxt == 1 + self.tx_written
                && matches!(
                    self.state,
                    TcpState::FinWait1 | TcpState::Closing | TcpState::LastAck
                )
            {
                let fin = self.snd_nxt;
                self.fin_pos = Some(fin);
                out.push(self.make_segment(TcpFlags::FIN_ACK, fin, Vec::new(), now));
                self.snd_nxt += 1;
                self.snd_max = self.snd_max.max(self.snd_nxt);
                self.pending_acks = 0;
            }
        }
        // Pure ACKs if no data segment carried them. One ACK per
        // ACK-eliciting segment received, so duplicate ACKs reach the
        // peer and trigger its fast retransmit.
        if self.pending_acks > 0 && (self.is_established() || self.state == TcpState::TimeWait) {
            if out.is_empty() {
                for _ in 0..self.pending_acks {
                    out.push(self.make_segment(TcpFlags::ACK, self.snd_nxt, Vec::new(), now));
                }
            }
            self.pending_acks = 0;
        }
        // (Re-)arm the retransmission timer when data is in flight.
        if self.snd_nxt > self.snd_una && self.retransmit_at.is_none() {
            self.retransmit_at = Some(now + self.rto.current());
        }
        out
    }
}

/// Demultiplexes inbound segments to per-peer server sockets.
#[derive(Debug)]
pub struct TcpListener {
    pub local: SocketAddr,
    cfg: TcpConfig,
    conns: HashMap<SocketAddr, TcpSocket>,
}

impl TcpListener {
    pub fn new(local: SocketAddr, cfg: TcpConfig) -> Self {
        TcpListener {
            local,
            cfg,
            conns: HashMap::new(),
        }
    }

    /// Route a segment from `peer`, creating a socket on SYN.
    pub fn on_segment(&mut self, now: SimTime, peer: SocketAddr, seg: &TcpSegment) {
        let sock = self.conns.entry(peer).or_insert_with(|| {
            // Deterministic per-peer ISS.
            let iss = peer
                .ip
                .0
                .wrapping_mul(2654435761)
                .wrapping_add(peer.port as u32);
            TcpSocket::server(self.local, peer, iss, self.cfg.clone())
        });
        sock.on_segment(now, seg);
    }

    /// Poll every connection; returns (peer, segment) pairs to transmit.
    pub fn poll(&mut self, now: SimTime) -> Vec<(SocketAddr, TcpSegment)> {
        let mut out = Vec::new();
        for (peer, sock) in self.conns.iter_mut() {
            for seg in sock.poll(now) {
                out.push((*peer, seg));
            }
        }
        out
    }

    pub fn next_timeout(&self) -> Option<SimTime> {
        self.conns.values().filter_map(|c| c.next_timeout()).min()
    }

    pub fn connection(&mut self, peer: SocketAddr) -> Option<&mut TcpSocket> {
        self.conns.get_mut(&peer)
    }

    pub fn connections(&mut self) -> impl Iterator<Item = (&SocketAddr, &mut TcpSocket)> {
        self.conns.iter_mut()
    }

    /// Drop fully closed connections.
    pub fn reap(&mut self) {
        self.conns.retain(|_, c| !c.is_closed() || c.reset_pending);
    }

    /// Drop connections that can never speak again: fully closed ones
    /// and half-closed ones the peer abandoned (FIN received and
    /// everything drained — see
    /// [`TcpSocket::is_quiescent_peer_closed`]). A long-lived server
    /// facing pooled clients that redial from fresh source ports would
    /// otherwise scan an ever-growing table of dead sockets on every
    /// poll. Call after a `poll` has flushed pending ACKs; a stray
    /// late segment from a reaped peer hits a fresh LISTEN socket,
    /// which ignores everything but SYN — same silence as CLOSED.
    pub fn reap_quiescent(&mut self) {
        self.conns
            .retain(|_, c| (!c.is_closed() || c.reset_pending) && !c.is_quiescent_peer_closed());
    }

    /// Whether a connection from `peer` is currently tracked.
    pub fn contains(&self, peer: SocketAddr) -> bool {
        self.conns.contains_key(&peer)
    }

    pub fn len(&self) -> usize {
        self.conns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doqlab_simnet::Ipv4Addr;

    fn sa(h: u8, port: u16) -> SocketAddr {
        SocketAddr::new(Ipv4Addr::new(10, 0, 0, h), port)
    }

    /// Drive both endpoints with a fixed one-way delay until neither has
    /// anything to send. Returns the virtual time at the end.
    struct Harness {
        a: TcpSocket,
        b: TcpSocket,
        now: SimTime,
        delay: Duration,
        /// (deliver_at, to_a, segment)
        wire: Vec<(SimTime, bool, TcpSegment)>,
        a_sent: usize,
        b_sent: usize,
    }

    impl Harness {
        fn new() -> Self {
            let a = TcpSocket::client(sa(1, 40000), sa(2, 853), 100, TcpConfig::default());
            let b = TcpSocket::server(sa(2, 853), sa(1, 40000), 900, TcpConfig::default());
            Harness {
                a,
                b,
                now: SimTime::ZERO,
                delay: Duration::from_millis(10),
                wire: Vec::new(),
                a_sent: 0,
                b_sent: 0,
            }
        }

        /// Run until both sockets go quiet (or 10k steps).
        fn settle(&mut self) {
            for _ in 0..10_000 {
                for seg in self.a.poll(self.now) {
                    self.a_sent += 1;
                    self.wire.push((self.now + self.delay, false, seg));
                }
                for seg in self.b.poll(self.now) {
                    self.b_sent += 1;
                    self.wire.push((self.now + self.delay, true, seg));
                }
                // Deliver everything due, else jump to the next event.
                self.wire.sort_by_key(|(t, _, _)| *t);
                if let Some((t, to_a, seg)) = self.wire.first().cloned() {
                    self.wire.remove(0);
                    self.now = t;
                    if to_a {
                        self.a.on_segment(self.now, &seg);
                    } else {
                        self.b.on_segment(self.now, &seg);
                    }
                } else {
                    // Nothing in flight: advance to a timer if armed.
                    let t = [self.a.next_timeout(), self.b.next_timeout()]
                        .into_iter()
                        .flatten()
                        .min();
                    match t {
                        Some(t) if t > self.now + Duration::from_secs(120) => break,
                        Some(t) => self.now = t,
                        None => break,
                    }
                }
            }
        }
    }

    #[test]
    fn three_way_handshake() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        assert!(h.a.is_established());
        assert!(h.b.is_established());
        // Client learns establishment after exactly 1 RTT.
        assert_eq!(h.a.established_at(), Some(SimTime::from_millis(20)));
        // 3 segments: SYN, SYN-ACK, ACK.
        assert_eq!(h.a_sent + h.b_sent, 3);
    }

    #[test]
    fn handshake_wire_sizes_match_paper() {
        // Table 1: DoTCP handshake C->R = 72 bytes (SYN 40 + ACK 32),
        // R->C = 40 bytes (SYN-ACK).
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        let syn = &h.a.poll(h.now)[0];
        assert_eq!(syn.encode().len(), 40);
        h.b.on_segment(h.now, syn);
        let synack = &h.b.poll(h.now)[0];
        assert_eq!(synack.encode().len(), 40);
        h.a.on_segment(h.now, synack);
        let ack = &h.a.poll(h.now)[0];
        assert_eq!(ack.encode().len(), 32);
    }

    #[test]
    fn data_transfer_both_directions() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.a.send(b"ping blob");
        h.settle();
        assert_eq!(h.b.recv(), b"ping blob");
        h.b.send(b"pong");
        h.settle();
        assert_eq!(h.a.recv(), b"pong");
    }

    #[test]
    fn large_transfer_is_segmented_and_reassembled() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        h.a.send(&data);
        h.settle();
        assert_eq!(h.b.recv(), data);
    }

    #[test]
    fn graceful_close_reaches_closed_on_both_ends() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.a.send(b"q");
        h.settle();
        h.b.send(b"r");
        h.b.close();
        h.settle();
        assert_eq!(h.a.recv(), b"r");
        assert!(h.a.peer_closed());
        h.a.close();
        h.settle();
        // Both FINs acked: b went LastAck->Closed, a TimeWait->Closed.
        assert!(h.b.is_closed());
        assert!(matches!(h.a.state(), TcpState::TimeWait | TcpState::Closed));
    }

    #[test]
    fn syn_is_retransmitted_after_rto() {
        let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 5, TcpConfig::default());
        a.open(SimTime::ZERO);
        let first = a.poll(SimTime::ZERO);
        assert_eq!(first.len(), 1);
        // Nothing comes back; poll before RTO: silence.
        assert!(a.poll(SimTime::from_millis(500)).is_empty());
        // After the 1 s initial RTO the SYN is resent.
        let again = a.poll(SimTime::from_millis(1001));
        assert_eq!(again.len(), 1);
        assert!(again[0].flags.syn);
    }

    #[test]
    fn connection_gives_up_after_max_retries() {
        let cfg = TcpConfig {
            max_retries: 2,
            ..TcpConfig::default()
        };
        let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 5, cfg);
        a.open(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            let _ = a.poll(now);
            match a.next_timeout() {
                Some(t) => now = t,
                None => break,
            }
        }
        let _ = a.poll(now);
        assert!(a.is_reset());
    }

    #[test]
    fn lost_data_segment_is_recovered_by_rto() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        h.a.send(b"hello");
        // Drop the data segment once.
        let lost = h.a.poll(h.now);
        assert_eq!(lost.len(), 1);
        // Fire the retransmission timer.
        let t = h.a.next_timeout().unwrap();
        h.now = t;
        h.settle();
        assert_eq!(h.b.recv(), b"hello");
    }

    #[test]
    fn out_of_order_delivery_is_reassembled() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        h.a.send(&[b'x'; 3000]); // two MSS-sized segments + remainder
        let segs = h.a.poll(h.now);
        assert!(segs.len() >= 2);
        // Deliver in reverse order.
        for seg in segs.iter().rev() {
            h.b.on_segment(h.now, seg);
        }
        assert_eq!(h.b.recv(), vec![b'x'; 3000]);
    }

    #[test]
    fn duplicate_segments_are_ignored() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        h.a.send(b"abc");
        let segs = h.a.poll(h.now);
        h.b.on_segment(h.now, &segs[0]);
        h.b.on_segment(h.now, &segs[0]);
        assert_eq!(h.b.recv(), b"abc");
    }

    #[test]
    fn fast_retransmit_on_three_dup_acks() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        let data = vec![7u8; 1460 * 5];
        h.a.send(&data);
        let segs = h.a.poll(h.now);
        assert_eq!(segs.len(), 5);
        // First segment is lost; deliver the other four -> 4 dup ACKs.
        for seg in &segs[1..] {
            h.b.on_segment(h.now, seg);
        }
        for (i, ack) in h.b.poll(h.now).iter().enumerate() {
            let _ = i;
            h.a.on_segment(h.now, ack);
        }
        // The socket must have rewound and be ready to resend data
        // without waiting for the 1 s RTO.
        let resent = h.a.poll(h.now);
        assert!(!resent.is_empty(), "fast retransmit should resend");
        h.settle();
        assert_eq!(h.b.recv(), data);
    }

    #[test]
    fn tfo_first_connection_requests_cookie_and_caches_it() {
        let cfg = TcpConfig {
            enable_tfo: true,
            ..TcpConfig::default()
        };
        let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 5, cfg.clone());
        let mut b = TcpSocket::server(sa(2, 2), sa(1, 1), 9, cfg);
        a.open(SimTime::ZERO);
        let syn = a.poll(SimTime::ZERO).remove(0);
        // First SYN carries an empty cookie request and no data.
        assert!(syn
            .options
            .iter()
            .any(|o| matches!(o, TcpOption::FastOpenCookie(c) if c.is_empty())));
        assert!(syn.payload.is_empty());
        b.on_segment(SimTime::ZERO, &syn);
        let synack = b.poll(SimTime::ZERO).remove(0);
        a.on_segment(SimTime::from_millis(1), &synack);
        assert!(a.tfo_cookie().is_some(), "client caches the issued cookie");
    }

    #[test]
    fn tfo_repeat_connection_sends_data_on_syn() {
        let cfg = TcpConfig {
            enable_tfo: true,
            ..TcpConfig::default()
        };
        let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 5, cfg.clone());
        a.set_tfo_cookie(vec![0xC0; 8]);
        a.send(b"early-query");
        a.open(SimTime::ZERO);
        let syn = a.poll(SimTime::ZERO).remove(0);
        assert_eq!(syn.payload, b"early-query");
        let mut b = TcpSocket::server(sa(2, 2), sa(1, 1), 9, cfg);
        b.on_segment(SimTime::ZERO, &syn);
        // Server delivers the data immediately, before the handshake
        // completes — that is the whole point of TFO.
        assert_eq!(b.recv(), b"early-query");
    }

    #[test]
    fn tfo_data_ignored_when_server_does_not_support_it() {
        let client_cfg = TcpConfig {
            enable_tfo: true,
            ..TcpConfig::default()
        };
        let mut a = TcpSocket::client(sa(1, 1), sa(2, 2), 5, client_cfg);
        a.set_tfo_cookie(vec![0xC0; 8]);
        a.send(b"early");
        a.open(SimTime::ZERO);
        let syn = a.poll(SimTime::ZERO).remove(0);
        let mut b = TcpSocket::server(sa(2, 2), sa(1, 1), 9, TcpConfig::default());
        b.on_segment(SimTime::ZERO, &syn);
        assert!(b.recv().is_empty(), "no-TFO server drops SYN data");
    }

    #[test]
    fn listener_accepts_multiple_peers() {
        let mut listener = TcpListener::new(sa(9, 853), TcpConfig::default());
        for peer_host in 1..=3u8 {
            let peer = sa(peer_host, 1000);
            let mut c = TcpSocket::client(peer, sa(9, 853), 1, TcpConfig::default());
            c.open(SimTime::ZERO);
            let syn = c.poll(SimTime::ZERO).remove(0);
            listener.on_segment(SimTime::ZERO, peer, &syn);
        }
        assert_eq!(listener.len(), 3);
        let out = listener.poll(SimTime::ZERO);
        assert_eq!(out.len(), 3, "one SYN-ACK per peer");
        assert!(out.iter().all(|(_, s)| s.flags.syn && s.flags.ack));
    }

    #[test]
    fn abort_emits_rst_and_peer_observes_reset() {
        let mut h = Harness::new();
        h.a.open(SimTime::ZERO);
        h.settle();
        h.a.abort();
        let rst = h.a.poll(h.now);
        assert_eq!(rst.len(), 1);
        assert!(rst[0].flags.rst);
        h.b.on_segment(h.now, &rst[0]);
        assert!(h.b.is_reset());
    }

    #[test]
    fn rtt_estimator_follows_samples() {
        let mut est = RtoEstimator::new(Duration::from_secs(1), Duration::from_millis(200));
        assert_eq!(est.current(), Duration::from_secs(1));
        est.on_sample(Duration::from_millis(100));
        // srtt=100ms, rttvar=50ms -> rto=300ms.
        assert_eq!(est.current(), Duration::from_millis(300));
        for _ in 0..20 {
            est.on_sample(Duration::from_millis(100));
        }
        // Stable samples shrink the variance toward the floor.
        assert!(est.current() <= Duration::from_millis(300));
        assert!(est.current() >= Duration::from_millis(200));
    }
}
