//! TCP: segments, the connection state machine, and a listener that
//! demultiplexes incoming segments onto per-peer sockets.

mod segment;
mod socket;

pub use segment::{TcpFlags, TcpOption, TcpSegment};
pub use socket::{TcpConfig, TcpFailure, TcpListener, TcpSocket, TcpState};
