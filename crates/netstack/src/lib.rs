//! # doqlab-netstack — transport protocols over the simulator
//!
//! From-scratch, sans-I/O implementations of every transport the paper's
//! DNS protocols ride on:
//!
//! * [`tcp`] — TCP (RFC 793 subset): 3-way handshake, segmentation,
//!   reassembly of out-of-order data, RFC 6298 retransmission timers
//!   (1 s initial RTO, the value the paper contrasts with Chromium's 5 s
//!   application-layer DoUDP retry), fast retransmit, slow start, FIN
//!   teardown and TCP Fast Open (RFC 7413 — probed by the paper, found
//!   unsupported by every resolver).
//! * [`tls`] — TLS 1.3 (1-RTT) and TLS 1.2 (2-RTT) handshake state
//!   machines with ALPN, NewSessionTicket (7-day lifetime per RFC 8446),
//!   PSK session resumption and optional 0-RTT early data. Records are
//!   framed on the wire with realistic message sizes; actual AEAD
//!   encryption is replaced by byte-overhead accounting (see DESIGN.md —
//!   confidentiality itself has no performance role in the paper).
//! * [`quic`] — QUIC v1 and the draft versions the paper observed
//!   (RFC 9000 subset): variable-length integers, long/short headers,
//!   Version Negotiation (including the version-0 probe used by the
//!   paper's ZMap scan), Initial datagram padding to 1200 bytes, the 3x
//!   anti-amplification limit, Retry and NEW_TOKEN address validation,
//!   CRYPTO/STREAM/ACK frames, client-initiated bidirectional streams
//!   and PTO-based loss recovery.
//! * [`http2`] — the slice of HTTP/2 that DoH needs: connection preface,
//!   SETTINGS, HPACK header blocks (static table + incremental
//!   indexing), HEADERS and DATA frames.
//! * [`http3`] — the slice of HTTP/3 that DoH3 (the paper's §4 future
//!   work) needs: control streams with SETTINGS, HEADERS/DATA frames
//!   with varint framing, and empty-dynamic-table QPACK.
//!
//! All state machines are polled with explicit [`doqlab_simnet::SimTime`]
//! values and never perform I/O themselves; the `doqlab-dox` crate glues
//! them to simulator hosts.

pub mod congestion;
pub mod http2;
pub mod http3;
pub mod quic;
pub mod tcp;
pub mod tls;
