//! Congestion control shared by TCP and QUIC: classic slow start with
//! congestion avoidance (NewReno-style window arithmetic, no SACK
//! scoreboard). The transfers in this workspace are small — DNS
//! messages, TLS handshakes and web objects up to a few hundred KB — so
//! the interesting behaviour is the initial window and the slow-start
//! doubling, both of which shape page-load times.

/// Byte-counting congestion window.
#[derive(Debug, Clone)]
pub struct CongestionController {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
}

/// RFC 6928 initial window: 10 segments.
pub const INITIAL_WINDOW_SEGMENTS: usize = 10;

impl CongestionController {
    pub fn new(mss: usize) -> Self {
        CongestionController {
            mss,
            cwnd: INITIAL_WINDOW_SEGMENTS * mss,
            ssthresh: usize::MAX,
        }
    }

    /// Current congestion window in bytes.
    pub fn window(&self) -> usize {
        self.cwnd
    }

    /// Current slow-start threshold in bytes (`usize::MAX` until the
    /// first loss).
    pub fn ssthresh(&self) -> usize {
        self.ssthresh
    }

    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Bytes newly acknowledged.
    pub fn on_ack(&mut self, acked: usize) {
        if self.in_slow_start() {
            self.cwnd += acked;
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            self.cwnd += self.mss * acked / self.cwnd.max(1);
        }
    }

    /// A loss detected via duplicate ACKs / fast retransmit: halve.
    pub fn on_fast_retransmit(&mut self, inflight: usize) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
    }

    /// A retransmission timeout: collapse to one segment.
    pub fn on_rto(&mut self, inflight: usize) {
        self.ssthresh = (inflight / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_window_is_ten_segments() {
        let cc = CongestionController::new(1460);
        assert_eq!(cc.window(), 14600);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut cc = CongestionController::new(1000);
        let w0 = cc.window();
        cc.on_ack(w0); // a full window acked
        assert_eq!(cc.window(), 2 * w0);
    }

    #[test]
    fn rto_collapses_window() {
        let mut cc = CongestionController::new(1000);
        cc.on_ack(20_000);
        let inflight = cc.window();
        cc.on_rto(inflight);
        assert_eq!(cc.window(), 1000);
        assert!(cc.in_slow_start());
        assert_eq!(cc.ssthresh, inflight / 2);
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = CongestionController::new(1000);
        cc.on_fast_retransmit(10_000);
        assert_eq!(cc.window(), 5000);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let mut cc = CongestionController::new(1000);
        cc.on_fast_retransmit(10_000); // leave slow start, cwnd = 5000
        let before = cc.window();
        cc.on_ack(before); // one full window acked
        let growth = cc.window() - before;
        assert!(
            growth <= 1100,
            "CA growth per RTT should be ~1 MSS, was {growth}"
        );
        assert!(growth >= 900);
    }

    #[test]
    fn loss_floor_is_two_segments() {
        let mut cc = CongestionController::new(1000);
        cc.on_rto(100);
        assert_eq!(cc.ssthresh, 2000);
    }
}
