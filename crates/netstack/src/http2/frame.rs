//! HTTP/2 frame layer (RFC 9113 §4): 9-byte header — 24-bit length,
//! type, flags, 31-bit stream id — followed by the payload.

const FLAG_ACK: u8 = 0x01; // SETTINGS / PING
const FLAG_END_STREAM: u8 = 0x01; // HEADERS / DATA
const FLAG_END_HEADERS: u8 = 0x04;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum H2FrameType {
    Data,
    Headers,
    RstStream,
    Settings,
    Ping,
    GoAway,
    WindowUpdate,
    Other(u8),
}

impl H2FrameType {
    fn to_u8(self) -> u8 {
        match self {
            H2FrameType::Data => 0x0,
            H2FrameType::Headers => 0x1,
            H2FrameType::RstStream => 0x3,
            H2FrameType::Settings => 0x4,
            H2FrameType::Ping => 0x6,
            H2FrameType::GoAway => 0x7,
            H2FrameType::WindowUpdate => 0x8,
            H2FrameType::Other(v) => v,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0x0 => H2FrameType::Data,
            0x1 => H2FrameType::Headers,
            0x3 => H2FrameType::RstStream,
            0x4 => H2FrameType::Settings,
            0x6 => H2FrameType::Ping,
            0x7 => H2FrameType::GoAway,
            0x8 => H2FrameType::WindowUpdate,
            other => H2FrameType::Other(other),
        }
    }
}

/// One HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H2Frame {
    pub ftype: H2FrameType,
    pub flags: u8,
    pub stream_id: u32,
    pub payload: Vec<u8>,
}

impl H2Frame {
    /// A SETTINGS frame. Non-ACK carries a realistic set of six
    /// settings (36 bytes), like common implementations send.
    pub fn settings(ack: bool) -> H2Frame {
        let payload = if ack {
            Vec::new()
        } else {
            // 6 x (u16 id, u32 value): header table size, enable push,
            // max concurrent streams, initial window, max frame size,
            // max header list size.
            let mut p = Vec::with_capacity(36);
            for (id, value) in [
                (0x1u16, 4096u32),
                (0x2, 0),
                (0x3, 100),
                (0x4, 1 << 20),
                (0x5, 16_384),
                (0x6, 65_536),
            ] {
                p.extend_from_slice(&id.to_be_bytes());
                p.extend_from_slice(&value.to_be_bytes());
            }
            p
        };
        H2Frame {
            ftype: H2FrameType::Settings,
            flags: if ack { FLAG_ACK } else { 0 },
            stream_id: 0,
            payload,
        }
    }

    pub fn headers(stream_id: u32, block: Vec<u8>, end_stream: bool) -> H2Frame {
        H2Frame {
            ftype: H2FrameType::Headers,
            flags: FLAG_END_HEADERS | if end_stream { FLAG_END_STREAM } else { 0 },
            stream_id,
            payload: block,
        }
    }

    pub fn data(stream_id: u32, payload: Vec<u8>, end_stream: bool) -> H2Frame {
        H2Frame {
            ftype: H2FrameType::Data,
            flags: if end_stream { FLAG_END_STREAM } else { 0 },
            stream_id,
            payload,
        }
    }

    pub fn ping_ack(payload: Vec<u8>) -> H2Frame {
        H2Frame {
            ftype: H2FrameType::Ping,
            flags: FLAG_ACK,
            stream_id: 0,
            payload,
        }
    }

    pub fn goaway() -> H2Frame {
        // last stream id (4) + error code (4).
        H2Frame {
            ftype: H2FrameType::GoAway,
            flags: 0,
            stream_id: 0,
            payload: vec![0; 8],
        }
    }

    pub fn flags_ack(&self) -> bool {
        self.flags & FLAG_ACK != 0
    }

    pub fn flags_end_stream(&self) -> bool {
        matches!(self.ftype, H2FrameType::Data | H2FrameType::Headers)
            && self.flags & FLAG_END_STREAM != 0
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.payload.len());
        let len = self.payload.len() as u32;
        out.extend_from_slice(&len.to_be_bytes()[1..]);
        out.push(self.ftype.to_u8());
        out.push(self.flags);
        out.extend_from_slice(&(self.stream_id & 0x7FFF_FFFF).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse one frame from the front of `buf`; `None` if incomplete.
    pub fn decode(buf: &[u8]) -> Option<(H2Frame, usize)> {
        if buf.len() < 9 {
            return None;
        }
        let len = u32::from_be_bytes([0, buf[0], buf[1], buf[2]]) as usize;
        if buf.len() < 9 + len {
            return None;
        }
        let frame = H2Frame {
            ftype: H2FrameType::from_u8(buf[3]),
            flags: buf[4],
            stream_id: u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) & 0x7FFF_FFFF,
            payload: buf[9..9 + len].to_vec(),
        };
        Some((frame, 9 + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_constructors() {
        for frame in [
            H2Frame::settings(false),
            H2Frame::settings(true),
            H2Frame::headers(1, vec![1, 2, 3], true),
            H2Frame::headers(3, vec![], false),
            H2Frame::data(1, b"body".to_vec(), true),
            H2Frame::ping_ack(vec![0; 8]),
            H2Frame::goaway(),
        ] {
            let wire = frame.encode();
            let (back, used) = H2Frame::decode(&wire).unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn settings_frame_is_realistic_size() {
        assert_eq!(H2Frame::settings(false).encode().len(), 9 + 36);
        assert_eq!(H2Frame::settings(true).encode().len(), 9);
    }

    #[test]
    fn end_stream_flag_only_on_data_and_headers() {
        let mut s = H2Frame::settings(true);
        s.flags = 0x01;
        assert!(!s.flags_end_stream());
        assert!(s.flags_ack());
        let d = H2Frame::data(1, vec![], true);
        assert!(d.flags_end_stream());
    }

    #[test]
    fn incomplete_frames_wait() {
        let wire = H2Frame::data(1, vec![9; 100], false).encode();
        for cut in [0, 5, 9, 50] {
            assert!(H2Frame::decode(&wire[..cut]).is_none());
        }
    }

    #[test]
    fn reserved_bit_is_masked() {
        let mut wire = H2Frame::data(1, vec![], false).encode();
        wire[5] |= 0x80; // set the reserved bit
        let (frame, _) = H2Frame::decode(&wire).unwrap();
        assert_eq!(frame.stream_id, 1);
    }
}
