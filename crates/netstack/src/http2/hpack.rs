//! HPACK header compression (RFC 7541) without Huffman coding: integer
//! prefix encoding, the full 61-entry static table, and a dynamic table
//! with incremental indexing. Huffman would shave ~25% off literal
//! strings; we account headers at their literal size, which keeps the
//! DoH byte numbers honest to within a few percent while keeping the
//! codec transparent.

/// The RFC 7541 Appendix A static table.
pub const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// Encode an integer with an `n`-bit prefix into `out`, OR-ing the
/// prefix bits of the first byte with `first`.
fn encode_int(out: &mut Vec<u8>, first: u8, n: u8, mut value: u64) {
    let max = (1u64 << n) - 1;
    if value < max {
        out.push(first | value as u8);
        return;
    }
    out.push(first | max as u8);
    value -= max;
    while value >= 128 {
        out.push((value % 128) as u8 | 0x80);
        value /= 128;
    }
    out.push(value as u8);
}

fn decode_int(buf: &[u8], pos: &mut usize, n: u8) -> Option<u64> {
    let max = (1u64 << n) - 1;
    let first = (*buf.get(*pos)? & (max as u8)) as u64;
    *pos += 1;
    if first < max {
        return Some(first);
    }
    let mut value = max;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        value += ((b & 0x7F) as u64) << shift;
        shift += 7;
        if b & 0x80 == 0 {
            return Some(value);
        }
        if shift > 56 {
            return None;
        }
    }
}

fn encode_string(out: &mut Vec<u8>, s: &str) {
    encode_int(out, 0, 7, s.len() as u64); // H bit = 0 (no Huffman)
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(buf: &[u8], pos: &mut usize) -> Option<String> {
    let huffman = buf.get(*pos)? & 0x80 != 0;
    let len = decode_int(buf, pos, 7)? as usize;
    if huffman {
        return None; // we never emit Huffman
    }
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Entry size per RFC 7541 §4.1.
fn entry_size(name: &str, value: &str) -> usize {
    name.len() + value.len() + 32
}

#[derive(Debug)]
struct DynamicTable {
    entries: std::collections::VecDeque<(String, String)>,
    size: usize,
    max_size: usize,
}

impl DynamicTable {
    fn new() -> Self {
        DynamicTable {
            entries: std::collections::VecDeque::new(),
            size: 0,
            max_size: 4096,
        }
    }

    fn insert(&mut self, name: String, value: String) {
        self.size += entry_size(&name, &value);
        self.entries.push_front((name, value));
        while self.size > self.max_size {
            if let Some((n, v)) = self.entries.pop_back() {
                self.size -= entry_size(&n, &v);
            } else {
                break;
            }
        }
    }

    /// Absolute HPACK index of an exact (name, value) match.
    fn find(&self, name: &str, value: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|(n, v)| n == name && v == value)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    fn find_name(&self, name: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    fn get(&self, index: usize) -> Option<(String, String)> {
        self.entries.get(index - STATIC_TABLE.len() - 1).cloned()
    }
}

fn static_find(name: &str, value: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|(n, v)| *n == name && *v == value)
        .map(|i| i + 1)
}

fn static_find_name(name: &str) -> Option<usize> {
    STATIC_TABLE
        .iter()
        .position(|(n, _)| *n == name)
        .map(|i| i + 1)
}

fn table_get(dynamic: &DynamicTable, index: usize) -> Option<(String, String)> {
    if index == 0 {
        return None;
    }
    if index <= STATIC_TABLE.len() {
        let (n, v) = STATIC_TABLE[index - 1];
        Some((n.to_string(), v.to_string()))
    } else {
        dynamic.get(index)
    }
}

/// Header-block encoder with a dynamic table.
#[derive(Debug)]
pub struct HpackEncoder {
    dynamic: DynamicTable,
}

impl Default for HpackEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl HpackEncoder {
    pub fn new() -> Self {
        HpackEncoder {
            dynamic: DynamicTable::new(),
        }
    }

    pub fn encode(&mut self, headers: &[(&str, &str)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, value) in headers {
            // Fully indexed?
            if let Some(idx) = static_find(name, value).or_else(|| self.dynamic.find(name, value)) {
                encode_int(&mut out, 0x80, 7, idx as u64);
                continue;
            }
            // Literal with incremental indexing; name indexed if known.
            let name_idx = static_find_name(name).or_else(|| self.dynamic.find_name(name));
            match name_idx {
                Some(idx) => encode_int(&mut out, 0x40, 6, idx as u64),
                None => {
                    encode_int(&mut out, 0x40, 6, 0);
                    encode_string(&mut out, name);
                }
            }
            encode_string(&mut out, value);
            self.dynamic.insert(name.to_string(), value.to_string());
        }
        out
    }
}

/// Header-block decoder with a dynamic table.
#[derive(Debug)]
pub struct HpackDecoder {
    dynamic: DynamicTable,
}

impl Default for HpackDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl HpackDecoder {
    pub fn new() -> Self {
        HpackDecoder {
            dynamic: DynamicTable::new(),
        }
    }

    pub fn decode(&mut self, block: &[u8]) -> Option<Vec<(String, String)>> {
        let mut headers = Vec::new();
        let mut pos = 0;
        while pos < block.len() {
            let b = block[pos];
            if b & 0x80 != 0 {
                // Indexed header field.
                let idx = decode_int(block, &mut pos, 7)? as usize;
                headers.push(table_get(&self.dynamic, idx)?);
            } else if b & 0x40 != 0 {
                // Literal with incremental indexing.
                let idx = decode_int(block, &mut pos, 6)? as usize;
                let name = if idx == 0 {
                    decode_string(block, &mut pos)?
                } else {
                    table_get(&self.dynamic, idx)?.0
                };
                let value = decode_string(block, &mut pos)?;
                self.dynamic.insert(name.clone(), value.clone());
                headers.push((name, value));
            } else if b & 0x20 != 0 {
                // Dynamic table size update.
                let size = decode_int(block, &mut pos, 5)? as usize;
                self.dynamic.max_size = size;
            } else {
                // Literal without indexing / never indexed (4-bit prefix).
                let idx = decode_int(block, &mut pos, 4)? as usize;
                let name = if idx == 0 {
                    decode_string(block, &mut pos)?
                } else {
                    table_get(&self.dynamic, idx)?.0
                };
                let value = decode_string(block, &mut pos)?;
                headers.push((name, value));
            }
        }
        Some(headers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(headers: &[(&str, &str)]) -> (usize, Vec<(String, String)>) {
        let mut enc = HpackEncoder::new();
        let mut dec = HpackDecoder::new();
        let block = enc.encode(headers);
        let out = dec.decode(&block).expect("decodes");
        (block.len(), out)
    }

    fn to_owned(headers: &[(&str, &str)]) -> Vec<(String, String)> {
        headers
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn static_table_has_61_entries() {
        assert_eq!(STATIC_TABLE.len(), 61);
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[2], (":method", "POST"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
    }

    #[test]
    fn fully_indexed_static_pairs_are_one_byte() {
        let mut enc = HpackEncoder::new();
        let block = enc.encode(&[
            (":method", "POST"),
            (":scheme", "https"),
            (":status", "200"),
        ]);
        assert_eq!(block.len(), 3);
    }

    #[test]
    fn roundtrip_doh_headers() {
        let headers = [
            (":method", "POST"),
            (":scheme", "https"),
            (":authority", "dns.example.net"),
            (":path", "/dns-query"),
            ("accept", "application/dns-message"),
            ("content-type", "application/dns-message"),
            ("content-length", "47"),
        ];
        let (_, out) = roundtrip(&headers);
        assert_eq!(out, to_owned(&headers));
    }

    #[test]
    fn repeat_encoding_uses_dynamic_table() {
        let headers = [
            (":authority", "dns.example.net"),
            ("content-type", "application/dns-message"),
        ];
        let mut enc = HpackEncoder::new();
        let mut dec = HpackDecoder::new();
        let first = enc.encode(&headers);
        let second = enc.encode(&headers);
        assert!(
            second.len() < first.len() / 3,
            "{} vs {}",
            second.len(),
            first.len()
        );
        assert_eq!(dec.decode(&first).unwrap(), to_owned(&headers));
        assert_eq!(dec.decode(&second).unwrap(), to_owned(&headers));
    }

    #[test]
    fn unknown_names_roundtrip() {
        let headers = [("x-custom-header", "some value"), ("x-another", "")];
        let (_, out) = roundtrip(&headers);
        assert_eq!(out, to_owned(&headers));
    }

    #[test]
    fn integer_encoding_rfc_example() {
        // RFC 7541 C.1.1: encoding 10 with a 5-bit prefix -> 0b01010.
        let mut out = Vec::new();
        encode_int(&mut out, 0, 5, 10);
        assert_eq!(out, vec![0x0A]);
        // C.1.2: 1337 with 5-bit prefix -> 1F 9A 0A.
        let mut out = Vec::new();
        encode_int(&mut out, 0, 5, 1337);
        assert_eq!(out, vec![0x1F, 0x9A, 0x0A]);
        let mut pos = 0;
        assert_eq!(decode_int(&[0x1F, 0x9A, 0x0A], &mut pos, 5), Some(1337));
    }

    #[test]
    fn eviction_keeps_table_bounded() {
        let mut enc = HpackEncoder::new();
        let mut dec = HpackDecoder::new();
        for i in 0..200 {
            let name = format!("x-header-{i}");
            let value = "v".repeat(100);
            let headers = [(name.as_str(), value.as_str())];
            let block = enc.encode(&headers);
            assert_eq!(dec.decode(&block).unwrap(), to_owned(&headers));
        }
        assert!(enc.dynamic.size <= enc.dynamic.max_size);
        assert!(dec.dynamic.size <= dec.dynamic.max_size);
    }

    #[test]
    fn truncated_blocks_fail_gracefully() {
        let mut enc = HpackEncoder::new();
        let block = enc.encode(&[(":authority", "dns.example.net")]);
        let mut dec = HpackDecoder::new();
        assert!(dec.decode(&block[..block.len() - 1]).is_none());
    }

    #[test]
    fn invalid_index_fails() {
        let mut dec = HpackDecoder::new();
        // Indexed field 100 with an empty dynamic table.
        let mut block = Vec::new();
        encode_int(&mut block, 0x80, 7, 100);
        assert!(dec.decode(&block).is_none());
    }
}
