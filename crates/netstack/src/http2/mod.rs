//! The slice of HTTP/2 (RFC 7540/9113) that DoH exercises: connection
//! preface, SETTINGS exchange, HPACK-compressed HEADERS and DATA frames
//! on client-initiated streams. Flow control runs with effectively
//! unlimited windows (DoH messages are far below the 64 KiB default);
//! server push, priorities and CONTINUATION are not modelled.
//!
//! The first request on a connection carries full literal headers and
//! populates the HPACK dynamic tables; subsequent requests compress to
//! a few bytes — which is exactly why the paper observes that re-using
//! a DoH connection amortizes slower than re-using a DoQ one (Table 1's
//! DoH query/response sizes embed the HTTP/2 framing and header
//! overhead).

mod frame;
mod hpack;

pub use frame::{H2Frame, H2FrameType};
pub use hpack::{HpackDecoder, HpackEncoder};

use std::collections::HashMap;

/// The 24-byte client connection preface.
pub const PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";

/// One HTTP message (request or response) assembled from frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H2Message {
    pub stream_id: u32,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl H2Message {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Client,
    Server,
}

#[derive(Debug, Default)]
struct StreamAssembly {
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    headers_done: bool,
}

/// An HTTP/2 connection endpoint (sans-I/O byte-stream interface).
#[derive(Debug)]
pub struct H2Connection {
    role: Role,
    out: Vec<u8>,
    in_buf: Vec<u8>,
    preface_seen: bool,
    settings_acked: bool,
    next_stream_id: u32,
    encoder: HpackEncoder,
    decoder: HpackDecoder,
    assembling: HashMap<u32, StreamAssembly>,
    complete: Vec<H2Message>,
    goaway: bool,
}

impl H2Connection {
    pub fn client() -> Self {
        let mut c = Self::new(Role::Client);
        c.out.extend_from_slice(PREFACE);
        c.out.extend_from_slice(&H2Frame::settings(false).encode());
        c
    }

    pub fn server() -> Self {
        let mut s = Self::new(Role::Server);
        s.out.extend_from_slice(&H2Frame::settings(false).encode());
        s
    }

    fn new(role: Role) -> Self {
        H2Connection {
            role,
            out: Vec::new(),
            in_buf: Vec::new(),
            preface_seen: role == Role::Client, // clients don't expect one
            settings_acked: false,
            next_stream_id: 1,
            encoder: HpackEncoder::new(),
            decoder: HpackDecoder::new(),
            assembling: HashMap::new(),
            complete: Vec::new(),
            goaway: false,
        }
    }

    /// Send a request; returns the stream id. (Client only.)
    pub fn send_request(&mut self, headers: &[(&str, &str)], body: &[u8]) -> u32 {
        assert_eq!(self.role, Role::Client);
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        self.send_message(id, headers, body);
        id
    }

    /// Send a response on `stream_id`. (Server only.)
    pub fn send_response(&mut self, stream_id: u32, headers: &[(&str, &str)], body: &[u8]) {
        assert_eq!(self.role, Role::Server);
        self.send_message(stream_id, headers, body);
    }

    fn send_message(&mut self, id: u32, headers: &[(&str, &str)], body: &[u8]) {
        let block = self.encoder.encode(headers);
        let end_stream = body.is_empty();
        self.out
            .extend_from_slice(&H2Frame::headers(id, block, end_stream).encode());
        if !body.is_empty() {
            // DATA frames up to 16 KiB (the default max frame size).
            let chunks: Vec<&[u8]> = body.chunks(16_384).collect();
            for (i, chunk) in chunks.iter().enumerate() {
                let last = i == chunks.len() - 1;
                self.out
                    .extend_from_slice(&H2Frame::data(id, chunk.to_vec(), last).encode());
            }
        }
    }

    /// Feed received bytes; complete messages appear via
    /// [`H2Connection::take_messages`].
    pub fn read_wire(&mut self, data: &[u8]) {
        self.in_buf.extend_from_slice(data);
        if !self.preface_seen {
            if self.in_buf.len() < PREFACE.len() {
                return;
            }
            // Tolerant: any 24 bytes are accepted as the preface (we
            // never interoperate with non-doqlab peers).
            self.in_buf.drain(..PREFACE.len());
            self.preface_seen = true;
        }
        while let Some((frame, used)) = H2Frame::decode(&self.in_buf) {
            self.in_buf.drain(..used);
            self.on_frame(frame);
        }
    }

    fn on_frame(&mut self, frame: H2Frame) {
        match frame.ftype {
            H2FrameType::Settings => {
                if !frame.flags_ack() {
                    self.out
                        .extend_from_slice(&H2Frame::settings(true).encode());
                } else {
                    self.settings_acked = true;
                }
            }
            H2FrameType::Headers => {
                let end = frame.flags_end_stream();
                if let Some(headers) = self.decoder.decode(&frame.payload) {
                    let entry = self.assembling.entry(frame.stream_id).or_default();
                    entry.headers = headers;
                    entry.headers_done = true;
                } else {
                    self.assembling.entry(frame.stream_id).or_default();
                }
                if end {
                    self.finish_stream(frame.stream_id);
                }
            }
            H2FrameType::Data => {
                let entry = self.assembling.entry(frame.stream_id).or_default();
                entry.body.extend_from_slice(&frame.payload);
                if frame.flags_end_stream() {
                    self.finish_stream(frame.stream_id);
                }
            }
            H2FrameType::GoAway => self.goaway = true,
            H2FrameType::Ping => {
                if !frame.flags_ack() {
                    self.out
                        .extend_from_slice(&H2Frame::ping_ack(frame.payload.clone()).encode());
                }
            }
            H2FrameType::WindowUpdate | H2FrameType::RstStream | H2FrameType::Other(_) => {}
        }
    }

    fn finish_stream(&mut self, id: u32) {
        if let Some(asm) = self.assembling.remove(&id) {
            self.complete.push(H2Message {
                stream_id: id,
                headers: asm.headers,
                body: asm.body,
            });
        }
    }

    /// Completed requests (server) or responses (client).
    pub fn take_messages(&mut self) -> Vec<H2Message> {
        std::mem::take(&mut self.complete)
    }

    /// Bytes to hand to the transport.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    pub fn received_goaway(&self) -> bool {
        self.goaway
    }

    /// Send GOAWAY (graceful shutdown).
    pub fn go_away(&mut self) {
        self.out.extend_from_slice(&H2Frame::goaway().encode());
    }
}

/// The standard DoH request headers (RFC 8484 §4.1, POST style).
pub fn doh_request_headers(authority: &str, body_len: usize) -> Vec<(String, String)> {
    vec![
        (":method".into(), "POST".into()),
        (":scheme".into(), "https".into()),
        (":authority".into(), authority.into()),
        (":path".into(), "/dns-query".into()),
        ("accept".into(), "application/dns-message".into()),
        ("content-type".into(), "application/dns-message".into()),
        ("content-length".into(), body_len.to_string()),
    ]
}

/// The standard DoH response headers.
pub fn doh_response_headers(body_len: usize) -> Vec<(String, String)> {
    vec![
        (":status".into(), "200".into()),
        ("content-type".into(), "application/dns-message".into()),
        ("content-length".into(), body_len.to_string()),
        ("cache-control".into(), "max-age=300".into()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shuttle(c: &mut H2Connection, s: &mut H2Connection) {
        for _ in 0..10 {
            let co = c.take_output();
            let so = s.take_output();
            if co.is_empty() && so.is_empty() {
                break;
            }
            s.read_wire(&co);
            c.read_wire(&so);
        }
    }

    fn hdrs(pairs: &[(String, String)]) -> Vec<(&str, &str)> {
        pairs
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect()
    }

    #[test]
    fn request_response_roundtrip() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        let req_headers = doh_request_headers("dns.example", 5);
        let id = c.send_request(&hdrs(&req_headers), b"query");
        assert_eq!(id, 1);
        shuttle(&mut c, &mut s);
        let reqs = s.take_messages();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].stream_id, 1);
        assert_eq!(reqs[0].body, b"query");
        assert_eq!(reqs[0].header(":method"), Some("POST"));
        assert_eq!(reqs[0].header(":path"), Some("/dns-query"));
        assert_eq!(
            reqs[0].header("content-type"),
            Some("application/dns-message")
        );

        let resp_headers = doh_response_headers(6);
        s.send_response(1, &hdrs(&resp_headers), b"answer");
        shuttle(&mut c, &mut s);
        let resps = c.take_messages();
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].body, b"answer");
        assert_eq!(resps[0].header(":status"), Some("200"));
    }

    #[test]
    fn multiple_requests_use_odd_stream_ids() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        let h = doh_request_headers("dns.example", 1);
        let a = c.send_request(&hdrs(&h), b"a");
        let b = c.send_request(&hdrs(&h), b"b");
        assert_eq!((a, b), (1, 3));
        shuttle(&mut c, &mut s);
        let reqs = s.take_messages();
        assert_eq!(reqs.len(), 2);
    }

    #[test]
    fn second_request_is_smaller_thanks_to_hpack() {
        let mut c = H2Connection::client();
        let h = doh_request_headers("dns.example", 40);
        c.send_request(&hdrs(&h), &[0; 40]);
        let first = c.take_output().len();
        c.send_request(&hdrs(&h), &[0; 40]);
        let second = c.take_output().len();
        // First request includes preface+settings and literal headers;
        // the repeat compresses to table references.
        assert!(second < first / 2, "first {first}, second {second}");
        assert!(second < 80, "second request should be tiny, was {second}");
    }

    #[test]
    fn empty_body_request_ends_stream_on_headers() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        let h = vec![(":method".to_string(), "GET".to_string())];
        c.send_request(&hdrs(&h), b"");
        shuttle(&mut c, &mut s);
        let reqs = s.take_messages();
        assert_eq!(reqs.len(), 1);
        assert!(reqs[0].body.is_empty());
    }

    #[test]
    fn large_body_spans_data_frames() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        let body = vec![7u8; 100_000];
        let h = doh_request_headers("dns.example", body.len());
        c.send_request(&hdrs(&h), &body);
        shuttle(&mut c, &mut s);
        let reqs = s.take_messages();
        assert_eq!(reqs[0].body, body);
    }

    #[test]
    fn settings_are_acked() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        shuttle(&mut c, &mut s);
        assert!(c.settings_acked);
        assert!(s.settings_acked);
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        let h = doh_request_headers("dns.example", 3);
        c.send_request(&hdrs(&h), b"abc");
        for b in c.take_output() {
            s.read_wire(&[b]);
        }
        let reqs = s.take_messages();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, b"abc");
    }

    #[test]
    fn goaway_is_visible() {
        let mut c = H2Connection::client();
        let mut s = H2Connection::server();
        shuttle(&mut c, &mut s);
        s.go_away();
        shuttle(&mut c, &mut s);
        assert!(c.received_goaway());
    }
}
