//! Single-query shootout: the §3.1 methodology on a reduced grid —
//! cache-warming query, session capture, measured query with Session
//! Resumption — printing the Fig. 2-style medians and Table 1-style
//! byte accounting.
//!
//! ```sh
//! cargo run --release --example single_query_shootout
//! ```

use doqlab_core::measure::report::{fig2, render_fig2, render_table1, table1};
use doqlab_core::Study;

fn main() {
    // A quick study: 12 resolvers spanning all continents, 1 repetition.
    let study = Study::quick(2022);
    println!(
        "Running the single-query campaign (quick scale: {} resolvers x 6 vantage points x 5 protocols)...\n",
        study.scale.resolvers.unwrap_or(313)
    );
    let samples = study.run_single_query();
    let failed = samples.iter().filter(|s| s.failed).count();
    println!("{} samples, {} failed\n", samples.len(), failed);

    println!("{}", render_table1(&table1(&samples)));
    println!("{}", render_fig2(&fig2(&samples)));

    println!(
        "Reading guide: handshake medians should show DoT ~= DoH ~= 2x DoTCP ~= 2x DoQ\n\
         (Fig. 2a), resolve medians should be flat across protocols and ordered by\n\
         vantage-point distance (Fig. 2b), and the byte table should reproduce the\n\
         Table 1 ordering with DoQ's padded handshake on top."
    );
}
