//! Discovery scan: the §2 funnel on a reduced synthetic population —
//! version-0 QUIC probes, DoQ ALPN verification, per-protocol support
//! checks.
//!
//! ```sh
//! cargo run --release --example discovery_scan
//! ```

use doqlab_core::measure::run_discovery;
use doqlab_core::resolver::synthesize_scan_population;

fn main() {
    // Full population: 1,216 DoQ resolvers (313 full DoX) + 150 QUIC
    // hosts that are not DoQ (HTTP/3 servers answering Version
    // Negotiation but refusing the DoQ ALPN). Scan a 1-in-4 sample to
    // keep the example fast.
    let population = synthesize_scan_population(2022, 150);
    let sample: Vec<_> = population.iter().step_by(4).cloned().collect();
    println!(
        "Probing {} of {} candidate hosts on UDP 784/853/8853 with version-0 Initials...\n",
        sample.len(),
        population.len()
    );
    let report = run_discovery(&sample);
    println!("probed hosts:              {}", report.probed_hosts);
    println!("QUIC (answered VN):        {}", report.quic_hosts);
    println!("DoQ resolvers (ALPN ok):   {}", report.doq_resolvers);
    println!("  + DoUDP support:         {}", report.doudp_support);
    println!("  + DoTCP support:         {}", report.dotcp_support);
    println!("  + DoT support:           {}", report.dot_support);
    println!("  + DoH support:           {}", report.doh_support);
    println!("verified DoX resolvers:    {}", report.verified_dox);
    println!(
        "\nThe full population reproduces the paper's funnel exactly:\n\
         1,216 DoQ -> 548/706/1,149/732 partial -> 313 verified DoX\n\
         (run `cargo run -p doqlab-bench --bin fig1_discovery` for the full scan)."
    );
}
