//! Page-load race: load Tranco top-10 pages through the DNS proxy over
//! each transport and watch the encryption cost amortize with page
//! complexity — the §3.2 takeaway, end to end.
//!
//! ```sh
//! cargo run --release --example page_load_race
//! ```

use doqlab_core::dox::DnsTransport;
use doqlab_core::prelude::*;
use doqlab_core::resolver::synthesize_dox_population;

fn main() {
    let pages = tranco_top10();
    let population = synthesize_dox_population(2022);
    // One mid-distance resolver (an AS-hosted one), vantage point EU.
    let resolver = &population[200];
    println!(
        "Loading each page via resolver {} ({}), vantage point EU:\n",
        resolver.ip, resolver.continent
    );
    println!(
        "{:<18}{:>4}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "page", "#q", "DoUDP", "DoQ", "DoH", "DoQ vs UDP", "DoQ vs DoH"
    );

    for page in [&pages[0], &pages[2], &pages[5], &pages[8], &pages[9]] {
        let mut plt = std::collections::HashMap::new();
        for transport in [DnsTransport::DoUdp, DnsTransport::DoQ, DnsTransport::DoH] {
            let mut cfg = PageLoadConfig::new(page.clone(), transport);
            cfg.seed = 99;
            cfg.resolver = resolver.server_config();
            cfg.resolver_location = resolver.location;
            cfg.vp_location = Coord::new(50.11, 8.68); // Frankfurt
            cfg.measured_loads = 4; // median of four, like the paper
            let results = run_page_load(&cfg);
            assert!(
                results.iter().any(|r| !r.failed),
                "{transport} failed on {}",
                page.name
            );
            let med = median(
                &results
                    .iter()
                    .filter(|r| !r.failed)
                    .map(|r| r.plt_ms)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            plt.insert(transport, med);
        }
        let (udp, doq, doh) = (
            plt[&DnsTransport::DoUdp],
            plt[&DnsTransport::DoQ],
            plt[&DnsTransport::DoH],
        );
        println!(
            "{:<18}{:>4}{:>9.0}ms{:>9.0}ms{:>9.0}ms{:>11.1}%{:>11.1}%",
            page.name,
            page.dns_query_count(),
            udp,
            doq,
            doh,
            100.0 * (doq - udp) / udp,
            100.0 * (doq - doh) / doh,
        );
    }

    println!(
        "\nReading guide: 'DoQ vs UDP' (the cost of encryption) shrinks as pages need\n\
         more DNS queries — the amortization of Fig. 4 — while 'DoQ vs DoH' stays\n\
         negative (DoQ ahead) throughout."
    );
}
