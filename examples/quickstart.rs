//! Quickstart: one DNS query over every transport, against one
//! simulated resolver — the smallest end-to-end use of the library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use doqlab_core::dnswire::{Message, Name, RecordType};
use doqlab_core::dox::{ClientConfig, DnsClientHost, DnsTransport, ServerConfig};
use doqlab_core::resolver::{RecursionModel, ResolverHost};
use doqlab_core::simnet::path::FixedPathModel;
use doqlab_core::simnet::{Duration, Ipv4Addr, SimTime, Simulator, SocketAddr};

fn main() {
    let resolver_ip = Ipv4Addr::new(192, 0, 2, 1);
    let one_way = Duration::from_millis(25);

    println!("One cached A query for google.com, 25 ms one-way to the resolver:\n");
    println!(
        "{:<8}{:>16}{:>16}{:>14}",
        "proto", "handshake (ms)", "resolve (ms)", "total (ms)"
    );

    for transport in DnsTransport::ALL {
        // Fresh micro-simulation per transport: a resolver host that
        // terminates all five protocols, and one client.
        let mut sim = Simulator::new(7, Box::new(FixedPathModel::new(one_way)));
        let resolver = ResolverHost::new(
            ServerConfig {
                ip: resolver_ip,
                ..ServerConfig::default()
            },
            RecursionModel::default(),
        );
        sim.add_host(Box::new(resolver), &[resolver_ip]);

        let query = Message::query(1, Name::parse("google.com").unwrap(), RecordType::A);

        // Cache-warming query first (the paper's methodology): the
        // measured query below is answered from the resolver's cache.
        let warm_ip = Ipv4Addr::new(10, 0, 0, 2);
        let warm = DnsClientHost::new(
            transport,
            SocketAddr::new(warm_ip, 40_000),
            SocketAddr::new(resolver_ip, transport.port()),
            &ClientConfig::default(),
        );
        let wid = sim.add_host(Box::new(warm), &[warm_ip]);
        sim.with_host::<DnsClientHost, _>(wid, |c, ctx| c.start_with_query(ctx, &query));
        sim.run_until(SimTime::from_secs(10));

        let client_ip = Ipv4Addr::new(10, 0, 0, 1);
        let client = DnsClientHost::new(
            transport,
            SocketAddr::new(client_ip, 40_000),
            SocketAddr::new(resolver_ip, transport.port()),
            &ClientConfig::default(),
        );
        let id = sim.add_host(Box::new(client), &[client_ip]);
        let measured_start = sim.now();
        sim.with_host::<DnsClientHost, _>(id, |c, ctx| c.start_with_query(ctx, &query));
        sim.run_until(measured_start + Duration::from_secs(10));

        let client = sim.host_mut::<DnsClientHost>(id);
        let (at, msg) = client.responses.first().expect("resolver answered").clone();
        assert!(!msg.answers.is_empty());
        let hs_ms = client.handshake_time().map(|d| d.as_secs_f64() * 1000.0);
        let hs = hs_ms
            .map(|v| format!("{v:>16.1}"))
            .unwrap_or_else(|| format!("{:>16}", "-"));
        let started = client.started_at().unwrap();
        let total = (at - started).as_secs_f64() * 1000.0;
        let resolve = total - hs_ms.unwrap_or(0.0);
        println!("{:<8}{hs}{resolve:>16.1}{total:>14.1}", transport.name());
    }

    println!(
        "\nExpected shape: DoUDP 1 RTT total; DoTCP & DoQ 2 RTT; DoT & DoH 3 RTT\n\
         (first connection, no session resumption yet — with resumption DoQ stays\n\
         at 2 RTT while DoT/DoH stay at 3, which is the paper's headline)."
    );
}
