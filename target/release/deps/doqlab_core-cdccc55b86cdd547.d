/root/repo/target/release/deps/doqlab_core-cdccc55b86cdd547.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libdoqlab_core-cdccc55b86cdd547.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libdoqlab_core-cdccc55b86cdd547.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
