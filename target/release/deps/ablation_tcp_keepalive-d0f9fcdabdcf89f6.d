/root/repo/target/release/deps/ablation_tcp_keepalive-d0f9fcdabdcf89f6.d: crates/bench/src/bin/ablation_tcp_keepalive.rs

/root/repo/target/release/deps/ablation_tcp_keepalive-d0f9fcdabdcf89f6: crates/bench/src/bin/ablation_tcp_keepalive.rs

crates/bench/src/bin/ablation_tcp_keepalive.rs:
