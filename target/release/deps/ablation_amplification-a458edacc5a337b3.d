/root/repo/target/release/deps/ablation_amplification-a458edacc5a337b3.d: crates/bench/src/bin/ablation_amplification.rs

/root/repo/target/release/deps/ablation_amplification-a458edacc5a337b3: crates/bench/src/bin/ablation_amplification.rs

crates/bench/src/bin/ablation_amplification.rs:
