/root/repo/target/release/deps/doqlab_measure-a702f22e5edb8266.d: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/release/deps/libdoqlab_measure-a702f22e5edb8266.rlib: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/release/deps/libdoqlab_measure-a702f22e5edb8266.rmeta: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

crates/measure/src/lib.rs:
crates/measure/src/discovery.rs:
crates/measure/src/engine.rs:
crates/measure/src/report.rs:
crates/measure/src/single_query.rs:
crates/measure/src/stats.rs:
crates/measure/src/vantage.rs:
crates/measure/src/webperf.rs:
