/root/repo/target/release/deps/doqlab-c9af839b6fdddd47.d: src/main.rs

/root/repo/target/release/deps/doqlab-c9af839b6fdddd47: src/main.rs

src/main.rs:
