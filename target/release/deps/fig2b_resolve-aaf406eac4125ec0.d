/root/repo/target/release/deps/fig2b_resolve-aaf406eac4125ec0.d: crates/bench/src/bin/fig2b_resolve.rs

/root/repo/target/release/deps/fig2b_resolve-aaf406eac4125ec0: crates/bench/src/bin/fig2b_resolve.rs

crates/bench/src/bin/fig2b_resolve.rs:
