/root/repo/target/release/deps/overview_versions-123187f0f4900751.d: crates/bench/src/bin/overview_versions.rs

/root/repo/target/release/deps/overview_versions-123187f0f4900751: crates/bench/src/bin/overview_versions.rs

crates/bench/src/bin/overview_versions.rs:
