/root/repo/target/release/deps/doqlab_resolver-6c4a1dca5886a121.d: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/release/deps/libdoqlab_resolver-6c4a1dca5886a121.rlib: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/release/deps/libdoqlab_resolver-6c4a1dca5886a121.rmeta: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

crates/resolver/src/lib.rs:
crates/resolver/src/cache.rs:
crates/resolver/src/host.rs:
crates/resolver/src/population.rs:
