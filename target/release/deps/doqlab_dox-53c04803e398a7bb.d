/root/repo/target/release/deps/doqlab_dox-53c04803e398a7bb.d: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

/root/repo/target/release/deps/libdoqlab_dox-53c04803e398a7bb.rlib: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

/root/repo/target/release/deps/libdoqlab_dox-53c04803e398a7bb.rmeta: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

crates/dox/src/lib.rs:
crates/dox/src/alpn.rs:
crates/dox/src/client.rs:
crates/dox/src/doh.rs:
crates/dox/src/doh3.rs:
crates/dox/src/doq.rs:
crates/dox/src/dot.rs:
crates/dox/src/host.rs:
crates/dox/src/server.rs:
crates/dox/src/tcp.rs:
crates/dox/src/udp.rs:
