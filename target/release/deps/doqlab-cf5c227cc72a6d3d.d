/root/repo/target/release/deps/doqlab-cf5c227cc72a6d3d.d: src/lib.rs

/root/repo/target/release/deps/libdoqlab-cf5c227cc72a6d3d.rlib: src/lib.rs

/root/repo/target/release/deps/libdoqlab-cf5c227cc72a6d3d.rmeta: src/lib.rs

src/lib.rs:
