/root/repo/target/release/deps/ablation_dot_bug-f1eac66afd8941e7.d: crates/bench/src/bin/ablation_dot_bug.rs

/root/repo/target/release/deps/ablation_dot_bug-f1eac66afd8941e7: crates/bench/src/bin/ablation_dot_bug.rs

crates/bench/src/bin/ablation_dot_bug.rs:
