/root/repo/target/release/deps/doqlab_webperf-284fb6ceb5b43fd8.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/release/deps/libdoqlab_webperf-284fb6ceb5b43fd8.rlib: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/release/deps/libdoqlab_webperf-284fb6ceb5b43fd8.rmeta: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
