/root/repo/target/release/deps/doqlab_simnet-0ec73bdcf1c8bae9.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libdoqlab_simnet-0ec73bdcf1c8bae9.rlib: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libdoqlab_simnet-0ec73bdcf1c8bae9.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/geo.rs:
crates/simnet/src/net.rs:
crates/simnet/src/path.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
