/root/repo/target/release/deps/fig1_discovery-bd10f6db6bbaef19.d: crates/bench/src/bin/fig1_discovery.rs

/root/repo/target/release/deps/fig1_discovery-bd10f6db6bbaef19: crates/bench/src/bin/fig1_discovery.rs

crates/bench/src/bin/fig1_discovery.rs:
