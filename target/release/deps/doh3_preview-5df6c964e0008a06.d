/root/repo/target/release/deps/doh3_preview-5df6c964e0008a06.d: crates/bench/src/bin/doh3_preview.rs

/root/repo/target/release/deps/doh3_preview-5df6c964e0008a06: crates/bench/src/bin/doh3_preview.rs

crates/bench/src/bin/doh3_preview.rs:
