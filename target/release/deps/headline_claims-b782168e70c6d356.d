/root/repo/target/release/deps/headline_claims-b782168e70c6d356.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/release/deps/headline_claims-b782168e70c6d356: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
