/root/repo/target/release/deps/table1_sizes-45f72e84ebb43c14.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/release/deps/table1_sizes-45f72e84ebb43c14: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
