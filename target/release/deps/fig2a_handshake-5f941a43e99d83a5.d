/root/repo/target/release/deps/fig2a_handshake-5f941a43e99d83a5.d: crates/bench/src/bin/fig2a_handshake.rs

/root/repo/target/release/deps/fig2a_handshake-5f941a43e99d83a5: crates/bench/src/bin/fig2a_handshake.rs

crates/bench/src/bin/fig2a_handshake.rs:
