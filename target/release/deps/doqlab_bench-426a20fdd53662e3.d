/root/repo/target/release/deps/doqlab_bench-426a20fdd53662e3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdoqlab_bench-426a20fdd53662e3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdoqlab_bench-426a20fdd53662e3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
