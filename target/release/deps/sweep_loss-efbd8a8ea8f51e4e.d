/root/repo/target/release/deps/sweep_loss-efbd8a8ea8f51e4e.d: crates/bench/src/bin/sweep_loss.rs

/root/repo/target/release/deps/sweep_loss-efbd8a8ea8f51e4e: crates/bench/src/bin/sweep_loss.rs

crates/bench/src/bin/sweep_loss.rs:
