/root/repo/target/release/deps/arena-562f149485bf1ca3.d: crates/bench/benches/arena.rs

/root/repo/target/release/deps/arena-562f149485bf1ca3: crates/bench/benches/arena.rs

crates/bench/benches/arena.rs:
