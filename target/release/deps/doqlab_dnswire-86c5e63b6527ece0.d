/root/repo/target/release/deps/doqlab_dnswire-86c5e63b6527ece0.d: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

/root/repo/target/release/deps/libdoqlab_dnswire-86c5e63b6527ece0.rlib: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

/root/repo/target/release/deps/libdoqlab_dnswire-86c5e63b6527ece0.rmeta: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

crates/dnswire/src/lib.rs:
crates/dnswire/src/edns.rs:
crates/dnswire/src/framing.rs:
crates/dnswire/src/message.rs:
crates/dnswire/src/name.rs:
crates/dnswire/src/record.rs:
crates/dnswire/src/types.rs:
crates/dnswire/src/wire.rs:
