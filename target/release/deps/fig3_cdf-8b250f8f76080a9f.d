/root/repo/target/release/deps/fig3_cdf-8b250f8f76080a9f.d: crates/bench/src/bin/fig3_cdf.rs

/root/repo/target/release/deps/fig3_cdf-8b250f8f76080a9f: crates/bench/src/bin/fig3_cdf.rs

crates/bench/src/bin/fig3_cdf.rs:
