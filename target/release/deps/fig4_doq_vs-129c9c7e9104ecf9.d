/root/repo/target/release/deps/fig4_doq_vs-129c9c7e9104ecf9.d: crates/bench/src/bin/fig4_doq_vs.rs

/root/repo/target/release/deps/fig4_doq_vs-129c9c7e9104ecf9: crates/bench/src/bin/fig4_doq_vs.rs

crates/bench/src/bin/fig4_doq_vs.rs:
