/root/repo/target/release/deps/ablation_0rtt-cfaaae4678c43d5d.d: crates/bench/src/bin/ablation_0rtt.rs

/root/repo/target/release/deps/ablation_0rtt-cfaaae4678c43d5d: crates/bench/src/bin/ablation_0rtt.rs

crates/bench/src/bin/ablation_0rtt.rs:
