/root/repo/target/release/deps/serde_json-3b4a97076be1459f.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3b4a97076be1459f.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3b4a97076be1459f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
