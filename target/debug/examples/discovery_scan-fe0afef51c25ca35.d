/root/repo/target/debug/examples/discovery_scan-fe0afef51c25ca35.d: examples/discovery_scan.rs

/root/repo/target/debug/examples/discovery_scan-fe0afef51c25ca35: examples/discovery_scan.rs

examples/discovery_scan.rs:
