/root/repo/target/debug/examples/page_load_race-b595cf47eb76b283.d: examples/page_load_race.rs

/root/repo/target/debug/examples/page_load_race-b595cf47eb76b283: examples/page_load_race.rs

examples/page_load_race.rs:
