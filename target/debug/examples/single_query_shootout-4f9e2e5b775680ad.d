/root/repo/target/debug/examples/single_query_shootout-4f9e2e5b775680ad.d: examples/single_query_shootout.rs

/root/repo/target/debug/examples/single_query_shootout-4f9e2e5b775680ad: examples/single_query_shootout.rs

examples/single_query_shootout.rs:
