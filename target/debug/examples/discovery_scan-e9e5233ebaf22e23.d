/root/repo/target/debug/examples/discovery_scan-e9e5233ebaf22e23.d: examples/discovery_scan.rs

/root/repo/target/debug/examples/discovery_scan-e9e5233ebaf22e23: examples/discovery_scan.rs

examples/discovery_scan.rs:
