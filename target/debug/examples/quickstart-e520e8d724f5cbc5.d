/root/repo/target/debug/examples/quickstart-e520e8d724f5cbc5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e520e8d724f5cbc5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
