/root/repo/target/debug/examples/single_query_shootout-280979349a7a1e9a.d: examples/single_query_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libsingle_query_shootout-280979349a7a1e9a.rmeta: examples/single_query_shootout.rs Cargo.toml

examples/single_query_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
