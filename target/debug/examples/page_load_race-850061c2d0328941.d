/root/repo/target/debug/examples/page_load_race-850061c2d0328941.d: examples/page_load_race.rs Cargo.toml

/root/repo/target/debug/examples/libpage_load_race-850061c2d0328941.rmeta: examples/page_load_race.rs Cargo.toml

examples/page_load_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
