/root/repo/target/debug/examples/page_load_race-b8b80586316c53e1.d: examples/page_load_race.rs

/root/repo/target/debug/examples/page_load_race-b8b80586316c53e1: examples/page_load_race.rs

examples/page_load_race.rs:
