/root/repo/target/debug/examples/discovery_scan-86127958043311e2.d: examples/discovery_scan.rs Cargo.toml

/root/repo/target/debug/examples/libdiscovery_scan-86127958043311e2.rmeta: examples/discovery_scan.rs Cargo.toml

examples/discovery_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
