/root/repo/target/debug/examples/single_query_shootout-ef2321cc167309fe.d: examples/single_query_shootout.rs

/root/repo/target/debug/examples/single_query_shootout-ef2321cc167309fe: examples/single_query_shootout.rs

examples/single_query_shootout.rs:
