/root/repo/target/debug/examples/quickstart-49945f74a5ddac98.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-49945f74a5ddac98: examples/quickstart.rs

examples/quickstart.rs:
