/root/repo/target/debug/examples/quickstart-f8a09191bc7a101d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f8a09191bc7a101d: examples/quickstart.rs

examples/quickstart.rs:
