/root/repo/target/debug/deps/end_to_end-1157b69d4aa77555.d: crates/dox/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1157b69d4aa77555: crates/dox/tests/end_to_end.rs

crates/dox/tests/end_to_end.rs:
