/root/repo/target/debug/deps/doqlab_core-c63e0049c04b18b8.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_core-c63e0049c04b18b8.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_core-c63e0049c04b18b8.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
