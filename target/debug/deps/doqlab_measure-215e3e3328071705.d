/root/repo/target/debug/deps/doqlab_measure-215e3e3328071705.d: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_measure-215e3e3328071705.rmeta: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs Cargo.toml

crates/measure/src/lib.rs:
crates/measure/src/discovery.rs:
crates/measure/src/engine.rs:
crates/measure/src/report.rs:
crates/measure/src/single_query.rs:
crates/measure/src/stats.rs:
crates/measure/src/vantage.rs:
crates/measure/src/webperf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
