/root/repo/target/debug/deps/ablation_dot_bug-91c0b9aac5e928a9.d: crates/bench/src/bin/ablation_dot_bug.rs

/root/repo/target/debug/deps/ablation_dot_bug-91c0b9aac5e928a9: crates/bench/src/bin/ablation_dot_bug.rs

crates/bench/src/bin/ablation_dot_bug.rs:
