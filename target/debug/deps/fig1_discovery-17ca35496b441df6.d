/root/repo/target/debug/deps/fig1_discovery-17ca35496b441df6.d: crates/bench/src/bin/fig1_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_discovery-17ca35496b441df6.rmeta: crates/bench/src/bin/fig1_discovery.rs Cargo.toml

crates/bench/src/bin/fig1_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
