/root/repo/target/debug/deps/doqlab_measure-73805cdbd174e67f.d: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/debug/deps/doqlab_measure-73805cdbd174e67f: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

crates/measure/src/lib.rs:
crates/measure/src/discovery.rs:
crates/measure/src/engine.rs:
crates/measure/src/report.rs:
crates/measure/src/single_query.rs:
crates/measure/src/stats.rs:
crates/measure/src/vantage.rs:
crates/measure/src/webperf.rs:
