/root/repo/target/debug/deps/serde-4e7b2966779af629.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-4e7b2966779af629: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
