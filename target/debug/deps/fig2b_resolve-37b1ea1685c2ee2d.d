/root/repo/target/debug/deps/fig2b_resolve-37b1ea1685c2ee2d.d: crates/bench/src/bin/fig2b_resolve.rs

/root/repo/target/debug/deps/fig2b_resolve-37b1ea1685c2ee2d: crates/bench/src/bin/fig2b_resolve.rs

crates/bench/src/bin/fig2b_resolve.rs:
