/root/repo/target/debug/deps/doqlab_netstack-e3575707064d1e16.d: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

/root/repo/target/debug/deps/libdoqlab_netstack-e3575707064d1e16.rlib: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

/root/repo/target/debug/deps/libdoqlab_netstack-e3575707064d1e16.rmeta: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

crates/netstack/src/lib.rs:
crates/netstack/src/congestion.rs:
crates/netstack/src/http2/mod.rs:
crates/netstack/src/http2/frame.rs:
crates/netstack/src/http2/hpack.rs:
crates/netstack/src/http3.rs:
crates/netstack/src/quic/mod.rs:
crates/netstack/src/quic/connection.rs:
crates/netstack/src/quic/frame.rs:
crates/netstack/src/quic/packet.rs:
crates/netstack/src/quic/varint.rs:
crates/netstack/src/tcp/mod.rs:
crates/netstack/src/tcp/segment.rs:
crates/netstack/src/tcp/socket.rs:
crates/netstack/src/tls/mod.rs:
crates/netstack/src/tls/engine.rs:
crates/netstack/src/tls/messages.rs:
crates/netstack/src/tls/session.rs:
