/root/repo/target/debug/deps/fig3_cdf-191d3332b631d463.d: crates/bench/src/bin/fig3_cdf.rs

/root/repo/target/debug/deps/fig3_cdf-191d3332b631d463: crates/bench/src/bin/fig3_cdf.rs

crates/bench/src/bin/fig3_cdf.rs:
