/root/repo/target/debug/deps/headline_claims-e05027db6d32caea.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/debug/deps/headline_claims-e05027db6d32caea: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
