/root/repo/target/debug/deps/arena-e8d243ded4ab5f4d.d: crates/bench/benches/arena.rs Cargo.toml

/root/repo/target/debug/deps/libarena-e8d243ded4ab5f4d.rmeta: crates/bench/benches/arena.rs Cargo.toml

crates/bench/benches/arena.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
