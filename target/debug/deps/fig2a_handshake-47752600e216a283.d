/root/repo/target/debug/deps/fig2a_handshake-47752600e216a283.d: crates/bench/src/bin/fig2a_handshake.rs

/root/repo/target/debug/deps/fig2a_handshake-47752600e216a283: crates/bench/src/bin/fig2a_handshake.rs

crates/bench/src/bin/fig2a_handshake.rs:
