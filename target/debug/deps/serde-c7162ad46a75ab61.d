/root/repo/target/debug/deps/serde-c7162ad46a75ab61.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-c7162ad46a75ab61.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
