/root/repo/target/debug/deps/simulation-8429ffb131f4a93d.d: crates/bench/benches/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-8429ffb131f4a93d.rmeta: crates/bench/benches/simulation.rs Cargo.toml

crates/bench/benches/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
