/root/repo/target/debug/deps/prop_roundtrip-d0248cb54948d10a.d: crates/dnswire/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-d0248cb54948d10a.rmeta: crates/dnswire/tests/prop_roundtrip.rs Cargo.toml

crates/dnswire/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
