/root/repo/target/debug/deps/engine-cad2aece745e48c5.d: crates/measure/tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-cad2aece745e48c5.rmeta: crates/measure/tests/engine.rs Cargo.toml

crates/measure/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
