/root/repo/target/debug/deps/overview_versions-b084230d512cc4f9.d: crates/bench/src/bin/overview_versions.rs Cargo.toml

/root/repo/target/debug/deps/liboverview_versions-b084230d512cc4f9.rmeta: crates/bench/src/bin/overview_versions.rs Cargo.toml

crates/bench/src/bin/overview_versions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
