/root/repo/target/debug/deps/sweep_loss-37a755230f6a57c7.d: crates/bench/src/bin/sweep_loss.rs

/root/repo/target/debug/deps/sweep_loss-37a755230f6a57c7: crates/bench/src/bin/sweep_loss.rs

crates/bench/src/bin/sweep_loss.rs:
