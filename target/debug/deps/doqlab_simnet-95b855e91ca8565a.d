/root/repo/target/debug/deps/doqlab_simnet-95b855e91ca8565a.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libdoqlab_simnet-95b855e91ca8565a.rlib: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libdoqlab_simnet-95b855e91ca8565a.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/geo.rs:
crates/simnet/src/net.rs:
crates/simnet/src/path.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
