/root/repo/target/debug/deps/doqlab_webperf-07d80dfc92bd3325.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/doqlab_webperf-07d80dfc92bd3325: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
