/root/repo/target/debug/deps/proxy-31d41edd5574f912.d: crates/webperf/tests/proxy.rs Cargo.toml

/root/repo/target/debug/deps/libproxy-31d41edd5574f912.rmeta: crates/webperf/tests/proxy.rs Cargo.toml

crates/webperf/tests/proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
