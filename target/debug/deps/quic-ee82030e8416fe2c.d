/root/repo/target/debug/deps/quic-ee82030e8416fe2c.d: crates/netstack/tests/quic.rs

/root/repo/target/debug/deps/quic-ee82030e8416fe2c: crates/netstack/tests/quic.rs

crates/netstack/tests/quic.rs:
