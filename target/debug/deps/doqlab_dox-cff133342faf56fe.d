/root/repo/target/debug/deps/doqlab_dox-cff133342faf56fe.d: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

/root/repo/target/debug/deps/libdoqlab_dox-cff133342faf56fe.rlib: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

/root/repo/target/debug/deps/libdoqlab_dox-cff133342faf56fe.rmeta: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs

crates/dox/src/lib.rs:
crates/dox/src/alpn.rs:
crates/dox/src/client.rs:
crates/dox/src/doh.rs:
crates/dox/src/doh3.rs:
crates/dox/src/doq.rs:
crates/dox/src/dot.rs:
crates/dox/src/host.rs:
crates/dox/src/server.rs:
crates/dox/src/tcp.rs:
crates/dox/src/udp.rs:
