/root/repo/target/debug/deps/doqlab-e6f7bac66374cab5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab-e6f7bac66374cab5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
