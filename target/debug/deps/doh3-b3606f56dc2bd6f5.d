/root/repo/target/debug/deps/doh3-b3606f56dc2bd6f5.d: crates/dox/tests/doh3.rs Cargo.toml

/root/repo/target/debug/deps/libdoh3-b3606f56dc2bd6f5.rmeta: crates/dox/tests/doh3.rs Cargo.toml

crates/dox/tests/doh3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
