/root/repo/target/debug/deps/doqlab-47fae4563bf38606.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab-47fae4563bf38606.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
