/root/repo/target/debug/deps/ablation_dot_bug-f2c5e1e3c892141a.d: crates/bench/src/bin/ablation_dot_bug.rs

/root/repo/target/debug/deps/ablation_dot_bug-f2c5e1e3c892141a: crates/bench/src/bin/ablation_dot_bug.rs

crates/bench/src/bin/ablation_dot_bug.rs:
