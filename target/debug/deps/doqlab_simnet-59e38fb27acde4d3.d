/root/repo/target/debug/deps/doqlab_simnet-59e38fb27acde4d3.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_simnet-59e38fb27acde4d3.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/geo.rs:
crates/simnet/src/net.rs:
crates/simnet/src/path.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
