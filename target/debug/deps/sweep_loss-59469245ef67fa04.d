/root/repo/target/debug/deps/sweep_loss-59469245ef67fa04.d: crates/bench/src/bin/sweep_loss.rs

/root/repo/target/debug/deps/sweep_loss-59469245ef67fa04: crates/bench/src/bin/sweep_loss.rs

crates/bench/src/bin/sweep_loss.rs:
