/root/repo/target/debug/deps/fig4_doq_vs-18c86b605c8c269d.d: crates/bench/src/bin/fig4_doq_vs.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_doq_vs-18c86b605c8c269d.rmeta: crates/bench/src/bin/fig4_doq_vs.rs Cargo.toml

crates/bench/src/bin/fig4_doq_vs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
