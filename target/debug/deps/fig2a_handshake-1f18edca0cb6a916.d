/root/repo/target/debug/deps/fig2a_handshake-1f18edca0cb6a916.d: crates/bench/src/bin/fig2a_handshake.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a_handshake-1f18edca0cb6a916.rmeta: crates/bench/src/bin/fig2a_handshake.rs Cargo.toml

crates/bench/src/bin/fig2a_handshake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
