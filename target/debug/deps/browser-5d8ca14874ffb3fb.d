/root/repo/target/debug/deps/browser-5d8ca14874ffb3fb.d: crates/webperf/tests/browser.rs

/root/repo/target/debug/deps/browser-5d8ca14874ffb3fb: crates/webperf/tests/browser.rs

crates/webperf/tests/browser.rs:
