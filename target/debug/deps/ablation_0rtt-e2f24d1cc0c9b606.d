/root/repo/target/debug/deps/ablation_0rtt-e2f24d1cc0c9b606.d: crates/bench/src/bin/ablation_0rtt.rs

/root/repo/target/debug/deps/ablation_0rtt-e2f24d1cc0c9b606: crates/bench/src/bin/ablation_0rtt.rs

crates/bench/src/bin/ablation_0rtt.rs:
