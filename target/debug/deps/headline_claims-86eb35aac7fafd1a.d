/root/repo/target/debug/deps/headline_claims-86eb35aac7fafd1a.d: crates/bench/src/bin/headline_claims.rs Cargo.toml

/root/repo/target/debug/deps/libheadline_claims-86eb35aac7fafd1a.rmeta: crates/bench/src/bin/headline_claims.rs Cargo.toml

crates/bench/src/bin/headline_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
