/root/repo/target/debug/deps/serde_json-857ad6ea2a3ec888.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-857ad6ea2a3ec888.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-857ad6ea2a3ec888.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
