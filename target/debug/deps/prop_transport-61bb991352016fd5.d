/root/repo/target/debug/deps/prop_transport-61bb991352016fd5.d: crates/netstack/tests/prop_transport.rs

/root/repo/target/debug/deps/prop_transport-61bb991352016fd5: crates/netstack/tests/prop_transport.rs

crates/netstack/tests/prop_transport.rs:
