/root/repo/target/debug/deps/fig3_cdf-c28ed7066fec5735.d: crates/bench/src/bin/fig3_cdf.rs

/root/repo/target/debug/deps/fig3_cdf-c28ed7066fec5735: crates/bench/src/bin/fig3_cdf.rs

crates/bench/src/bin/fig3_cdf.rs:
