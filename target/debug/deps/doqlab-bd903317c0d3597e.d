/root/repo/target/debug/deps/doqlab-bd903317c0d3597e.d: src/lib.rs

/root/repo/target/debug/deps/libdoqlab-bd903317c0d3597e.rlib: src/lib.rs

/root/repo/target/debug/deps/libdoqlab-bd903317c0d3597e.rmeta: src/lib.rs

src/lib.rs:
