/root/repo/target/debug/deps/doqlab_resolver-c91caff9c6150d33.d: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/debug/deps/doqlab_resolver-c91caff9c6150d33: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

crates/resolver/src/lib.rs:
crates/resolver/src/cache.rs:
crates/resolver/src/host.rs:
crates/resolver/src/population.rs:
