/root/repo/target/debug/deps/doqlab-457756142329118d.d: src/lib.rs

/root/repo/target/debug/deps/doqlab-457756142329118d: src/lib.rs

src/lib.rs:
