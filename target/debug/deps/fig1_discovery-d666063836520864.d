/root/repo/target/debug/deps/fig1_discovery-d666063836520864.d: crates/bench/src/bin/fig1_discovery.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_discovery-d666063836520864.rmeta: crates/bench/src/bin/fig1_discovery.rs Cargo.toml

crates/bench/src/bin/fig1_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
