/root/repo/target/debug/deps/overview_versions-7ed1dc1774e1b158.d: crates/bench/src/bin/overview_versions.rs

/root/repo/target/debug/deps/overview_versions-7ed1dc1774e1b158: crates/bench/src/bin/overview_versions.rs

crates/bench/src/bin/overview_versions.rs:
