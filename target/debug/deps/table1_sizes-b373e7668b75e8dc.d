/root/repo/target/debug/deps/table1_sizes-b373e7668b75e8dc.d: crates/bench/src/bin/table1_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_sizes-b373e7668b75e8dc.rmeta: crates/bench/src/bin/table1_sizes.rs Cargo.toml

crates/bench/src/bin/table1_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
