/root/repo/target/debug/deps/doh3_preview-48d4ced98445b642.d: crates/bench/src/bin/doh3_preview.rs Cargo.toml

/root/repo/target/debug/deps/libdoh3_preview-48d4ced98445b642.rmeta: crates/bench/src/bin/doh3_preview.rs Cargo.toml

crates/bench/src/bin/doh3_preview.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
