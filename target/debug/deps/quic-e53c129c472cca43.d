/root/repo/target/debug/deps/quic-e53c129c472cca43.d: crates/netstack/tests/quic.rs Cargo.toml

/root/repo/target/debug/deps/libquic-e53c129c472cca43.rmeta: crates/netstack/tests/quic.rs Cargo.toml

crates/netstack/tests/quic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
