/root/repo/target/debug/deps/doqlab-bfa1670aa8a82b96.d: src/main.rs

/root/repo/target/debug/deps/doqlab-bfa1670aa8a82b96: src/main.rs

src/main.rs:
