/root/repo/target/debug/deps/browser-4eb5bc6cff3c2783.d: crates/webperf/tests/browser.rs

/root/repo/target/debug/deps/browser-4eb5bc6cff3c2783: crates/webperf/tests/browser.rs

crates/webperf/tests/browser.rs:
