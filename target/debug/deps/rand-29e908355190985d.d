/root/repo/target/debug/deps/rand-29e908355190985d.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-29e908355190985d.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-29e908355190985d.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
