/root/repo/target/debug/deps/doh3-fbdc3412c729da31.d: crates/dox/tests/doh3.rs

/root/repo/target/debug/deps/doh3-fbdc3412c729da31: crates/dox/tests/doh3.rs

crates/dox/tests/doh3.rs:
