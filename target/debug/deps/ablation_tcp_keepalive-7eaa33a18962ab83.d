/root/repo/target/debug/deps/ablation_tcp_keepalive-7eaa33a18962ab83.d: crates/bench/src/bin/ablation_tcp_keepalive.rs

/root/repo/target/debug/deps/ablation_tcp_keepalive-7eaa33a18962ab83: crates/bench/src/bin/ablation_tcp_keepalive.rs

crates/bench/src/bin/ablation_tcp_keepalive.rs:
