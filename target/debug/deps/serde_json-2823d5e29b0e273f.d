/root/repo/target/debug/deps/serde_json-2823d5e29b0e273f.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-2823d5e29b0e273f: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
