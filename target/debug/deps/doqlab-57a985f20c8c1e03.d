/root/repo/target/debug/deps/doqlab-57a985f20c8c1e03.d: src/lib.rs

/root/repo/target/debug/deps/doqlab-57a985f20c8c1e03: src/lib.rs

src/lib.rs:
