/root/repo/target/debug/deps/doqlab_simnet-bb5b7ecc2389032e.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_simnet-bb5b7ecc2389032e.rmeta: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/geo.rs:
crates/simnet/src/net.rs:
crates/simnet/src/path.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
