/root/repo/target/debug/deps/fig2a_handshake-4255abd6ff51428d.d: crates/bench/src/bin/fig2a_handshake.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a_handshake-4255abd6ff51428d.rmeta: crates/bench/src/bin/fig2a_handshake.rs Cargo.toml

crates/bench/src/bin/fig2a_handshake.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
