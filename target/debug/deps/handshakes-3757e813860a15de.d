/root/repo/target/debug/deps/handshakes-3757e813860a15de.d: crates/bench/benches/handshakes.rs Cargo.toml

/root/repo/target/debug/deps/libhandshakes-3757e813860a15de.rmeta: crates/bench/benches/handshakes.rs Cargo.toml

crates/bench/benches/handshakes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
