/root/repo/target/debug/deps/doqlab_resolver-ca183d7793f4227d.d: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_resolver-ca183d7793f4227d.rmeta: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs Cargo.toml

crates/resolver/src/lib.rs:
crates/resolver/src/cache.rs:
crates/resolver/src/host.rs:
crates/resolver/src/population.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
