/root/repo/target/debug/deps/fig4_doq_vs-d2c191fb582139a6.d: crates/bench/src/bin/fig4_doq_vs.rs

/root/repo/target/debug/deps/fig4_doq_vs-d2c191fb582139a6: crates/bench/src/bin/fig4_doq_vs.rs

crates/bench/src/bin/fig4_doq_vs.rs:
