/root/repo/target/debug/deps/overview_versions-82d60ea00ebfd05c.d: crates/bench/src/bin/overview_versions.rs

/root/repo/target/debug/deps/overview_versions-82d60ea00ebfd05c: crates/bench/src/bin/overview_versions.rs

crates/bench/src/bin/overview_versions.rs:
