/root/repo/target/debug/deps/ablation_tcp_keepalive-02a31bb45336b899.d: crates/bench/src/bin/ablation_tcp_keepalive.rs Cargo.toml

/root/repo/target/debug/deps/libablation_tcp_keepalive-02a31bb45336b899.rmeta: crates/bench/src/bin/ablation_tcp_keepalive.rs Cargo.toml

crates/bench/src/bin/ablation_tcp_keepalive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
