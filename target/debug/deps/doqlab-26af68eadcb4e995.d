/root/repo/target/debug/deps/doqlab-26af68eadcb4e995.d: src/lib.rs

/root/repo/target/debug/deps/libdoqlab-26af68eadcb4e995.rlib: src/lib.rs

/root/repo/target/debug/deps/libdoqlab-26af68eadcb4e995.rmeta: src/lib.rs

src/lib.rs:
