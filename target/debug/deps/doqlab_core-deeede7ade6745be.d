/root/repo/target/debug/deps/doqlab_core-deeede7ade6745be.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_core-deeede7ade6745be.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
