/root/repo/target/debug/deps/doqlab_netstack-f0ae8a0fcaed88d4.d: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_netstack-f0ae8a0fcaed88d4.rmeta: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs Cargo.toml

crates/netstack/src/lib.rs:
crates/netstack/src/congestion.rs:
crates/netstack/src/http2/mod.rs:
crates/netstack/src/http2/frame.rs:
crates/netstack/src/http2/hpack.rs:
crates/netstack/src/http3.rs:
crates/netstack/src/quic/mod.rs:
crates/netstack/src/quic/connection.rs:
crates/netstack/src/quic/frame.rs:
crates/netstack/src/quic/packet.rs:
crates/netstack/src/quic/varint.rs:
crates/netstack/src/tcp/mod.rs:
crates/netstack/src/tcp/segment.rs:
crates/netstack/src/tcp/socket.rs:
crates/netstack/src/tls/mod.rs:
crates/netstack/src/tls/engine.rs:
crates/netstack/src/tls/messages.rs:
crates/netstack/src/tls/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
