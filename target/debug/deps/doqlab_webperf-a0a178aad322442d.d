/root/repo/target/debug/deps/doqlab_webperf-a0a178aad322442d.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/libdoqlab_webperf-a0a178aad322442d.rlib: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/libdoqlab_webperf-a0a178aad322442d.rmeta: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
