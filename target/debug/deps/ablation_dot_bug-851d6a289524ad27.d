/root/repo/target/debug/deps/ablation_dot_bug-851d6a289524ad27.d: crates/bench/src/bin/ablation_dot_bug.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dot_bug-851d6a289524ad27.rmeta: crates/bench/src/bin/ablation_dot_bug.rs Cargo.toml

crates/bench/src/bin/ablation_dot_bug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
