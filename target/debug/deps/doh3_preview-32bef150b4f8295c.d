/root/repo/target/debug/deps/doh3_preview-32bef150b4f8295c.d: crates/bench/src/bin/doh3_preview.rs Cargo.toml

/root/repo/target/debug/deps/libdoh3_preview-32bef150b4f8295c.rmeta: crates/bench/src/bin/doh3_preview.rs Cargo.toml

crates/bench/src/bin/doh3_preview.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
