/root/repo/target/debug/deps/doqlab_resolver-52dc5d3a37f26e8c.d: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/debug/deps/libdoqlab_resolver-52dc5d3a37f26e8c.rlib: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/debug/deps/libdoqlab_resolver-52dc5d3a37f26e8c.rmeta: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

crates/resolver/src/lib.rs:
crates/resolver/src/cache.rs:
crates/resolver/src/host.rs:
crates/resolver/src/population.rs:
