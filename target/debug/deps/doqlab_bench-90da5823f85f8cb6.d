/root/repo/target/debug/deps/doqlab_bench-90da5823f85f8cb6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_bench-90da5823f85f8cb6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
