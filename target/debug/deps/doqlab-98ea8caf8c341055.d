/root/repo/target/debug/deps/doqlab-98ea8caf8c341055.d: src/main.rs

/root/repo/target/debug/deps/doqlab-98ea8caf8c341055: src/main.rs

src/main.rs:
