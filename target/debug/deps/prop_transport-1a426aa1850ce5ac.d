/root/repo/target/debug/deps/prop_transport-1a426aa1850ce5ac.d: crates/netstack/tests/prop_transport.rs

/root/repo/target/debug/deps/prop_transport-1a426aa1850ce5ac: crates/netstack/tests/prop_transport.rs

crates/netstack/tests/prop_transport.rs:
