/root/repo/target/debug/deps/engine-e1d7b70dcd95501b.d: crates/measure/tests/engine.rs

/root/repo/target/debug/deps/engine-e1d7b70dcd95501b: crates/measure/tests/engine.rs

crates/measure/tests/engine.rs:
