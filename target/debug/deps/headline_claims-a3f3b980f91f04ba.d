/root/repo/target/debug/deps/headline_claims-a3f3b980f91f04ba.d: crates/bench/src/bin/headline_claims.rs

/root/repo/target/debug/deps/headline_claims-a3f3b980f91f04ba: crates/bench/src/bin/headline_claims.rs

crates/bench/src/bin/headline_claims.rs:
