/root/repo/target/debug/deps/ablation_tcp_keepalive-ffb1d9ec24b066dc.d: crates/bench/src/bin/ablation_tcp_keepalive.rs

/root/repo/target/debug/deps/ablation_tcp_keepalive-ffb1d9ec24b066dc: crates/bench/src/bin/ablation_tcp_keepalive.rs

crates/bench/src/bin/ablation_tcp_keepalive.rs:
