/root/repo/target/debug/deps/doqlab_resolver-a4bfb0235a48fcd5.d: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/debug/deps/libdoqlab_resolver-a4bfb0235a48fcd5.rlib: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

/root/repo/target/debug/deps/libdoqlab_resolver-a4bfb0235a48fcd5.rmeta: crates/resolver/src/lib.rs crates/resolver/src/cache.rs crates/resolver/src/host.rs crates/resolver/src/population.rs

crates/resolver/src/lib.rs:
crates/resolver/src/cache.rs:
crates/resolver/src/host.rs:
crates/resolver/src/population.rs:
