/root/repo/target/debug/deps/ablation_0rtt-577f7503e325adad.d: crates/bench/src/bin/ablation_0rtt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_0rtt-577f7503e325adad.rmeta: crates/bench/src/bin/ablation_0rtt.rs Cargo.toml

crates/bench/src/bin/ablation_0rtt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
