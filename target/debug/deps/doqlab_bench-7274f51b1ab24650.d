/root/repo/target/debug/deps/doqlab_bench-7274f51b1ab24650.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_bench-7274f51b1ab24650.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_bench-7274f51b1ab24650.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
