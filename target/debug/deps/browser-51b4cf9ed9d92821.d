/root/repo/target/debug/deps/browser-51b4cf9ed9d92821.d: crates/webperf/tests/browser.rs Cargo.toml

/root/repo/target/debug/deps/libbrowser-51b4cf9ed9d92821.rmeta: crates/webperf/tests/browser.rs Cargo.toml

crates/webperf/tests/browser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
