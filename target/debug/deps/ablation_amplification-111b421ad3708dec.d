/root/repo/target/debug/deps/ablation_amplification-111b421ad3708dec.d: crates/bench/src/bin/ablation_amplification.rs

/root/repo/target/debug/deps/ablation_amplification-111b421ad3708dec: crates/bench/src/bin/ablation_amplification.rs

crates/bench/src/bin/ablation_amplification.rs:
