/root/repo/target/debug/deps/fig1_discovery-7d5187745c0e67d6.d: crates/bench/src/bin/fig1_discovery.rs

/root/repo/target/debug/deps/fig1_discovery-7d5187745c0e67d6: crates/bench/src/bin/fig1_discovery.rs

crates/bench/src/bin/fig1_discovery.rs:
