/root/repo/target/debug/deps/doqlab_bench-8057b9d312d38ef7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_bench-8057b9d312d38ef7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
