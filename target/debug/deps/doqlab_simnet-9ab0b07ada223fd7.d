/root/repo/target/debug/deps/doqlab_simnet-9ab0b07ada223fd7.d: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/doqlab_simnet-9ab0b07ada223fd7: crates/simnet/src/lib.rs crates/simnet/src/event.rs crates/simnet/src/geo.rs crates/simnet/src/net.rs crates/simnet/src/path.rs crates/simnet/src/rng.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/event.rs:
crates/simnet/src/geo.rs:
crates/simnet/src/net.rs:
crates/simnet/src/path.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
