/root/repo/target/debug/deps/doqlab_bench-7e56d710fa99145c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_bench-7e56d710fa99145c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_bench-7e56d710fa99145c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
