/root/repo/target/debug/deps/doqlab_webperf-f0d18e3901931e36.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_webperf-f0d18e3901931e36.rmeta: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs Cargo.toml

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
