/root/repo/target/debug/deps/doqlab_measure-bb82ab9badc9fbb5.d: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/debug/deps/doqlab_measure-bb82ab9badc9fbb5: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

crates/measure/src/lib.rs:
crates/measure/src/discovery.rs:
crates/measure/src/engine.rs:
crates/measure/src/report.rs:
crates/measure/src/single_query.rs:
crates/measure/src/stats.rs:
crates/measure/src/vantage.rs:
crates/measure/src/webperf.rs:
