/root/repo/target/debug/deps/ablation_0rtt-8241278f037795cf.d: crates/bench/src/bin/ablation_0rtt.rs Cargo.toml

/root/repo/target/debug/deps/libablation_0rtt-8241278f037795cf.rmeta: crates/bench/src/bin/ablation_0rtt.rs Cargo.toml

crates/bench/src/bin/ablation_0rtt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
