/root/repo/target/debug/deps/doqlab_dnswire-18581661416e5fe2.d: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

/root/repo/target/debug/deps/libdoqlab_dnswire-18581661416e5fe2.rlib: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

/root/repo/target/debug/deps/libdoqlab_dnswire-18581661416e5fe2.rmeta: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

crates/dnswire/src/lib.rs:
crates/dnswire/src/edns.rs:
crates/dnswire/src/framing.rs:
crates/dnswire/src/message.rs:
crates/dnswire/src/name.rs:
crates/dnswire/src/record.rs:
crates/dnswire/src/types.rs:
crates/dnswire/src/wire.rs:
