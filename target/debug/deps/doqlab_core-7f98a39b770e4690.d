/root/repo/target/debug/deps/doqlab_core-7f98a39b770e4690.d: crates/core/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_core-7f98a39b770e4690.rmeta: crates/core/src/lib.rs Cargo.toml

crates/core/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
