/root/repo/target/debug/deps/doqlab_netstack-f687d3a5186e756a.d: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

/root/repo/target/debug/deps/libdoqlab_netstack-f687d3a5186e756a.rlib: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

/root/repo/target/debug/deps/libdoqlab_netstack-f687d3a5186e756a.rmeta: crates/netstack/src/lib.rs crates/netstack/src/congestion.rs crates/netstack/src/http2/mod.rs crates/netstack/src/http2/frame.rs crates/netstack/src/http2/hpack.rs crates/netstack/src/http3.rs crates/netstack/src/quic/mod.rs crates/netstack/src/quic/connection.rs crates/netstack/src/quic/frame.rs crates/netstack/src/quic/packet.rs crates/netstack/src/quic/varint.rs crates/netstack/src/tcp/mod.rs crates/netstack/src/tcp/segment.rs crates/netstack/src/tcp/socket.rs crates/netstack/src/tls/mod.rs crates/netstack/src/tls/engine.rs crates/netstack/src/tls/messages.rs crates/netstack/src/tls/session.rs

crates/netstack/src/lib.rs:
crates/netstack/src/congestion.rs:
crates/netstack/src/http2/mod.rs:
crates/netstack/src/http2/frame.rs:
crates/netstack/src/http2/hpack.rs:
crates/netstack/src/http3.rs:
crates/netstack/src/quic/mod.rs:
crates/netstack/src/quic/connection.rs:
crates/netstack/src/quic/frame.rs:
crates/netstack/src/quic/packet.rs:
crates/netstack/src/quic/varint.rs:
crates/netstack/src/tcp/mod.rs:
crates/netstack/src/tcp/segment.rs:
crates/netstack/src/tcp/socket.rs:
crates/netstack/src/tls/mod.rs:
crates/netstack/src/tls/engine.rs:
crates/netstack/src/tls/messages.rs:
crates/netstack/src/tls/session.rs:
