/root/repo/target/debug/deps/doqlab-a8e8b17c2766e922.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab-a8e8b17c2766e922.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
