/root/repo/target/debug/deps/doqlab_measure-5f9ec80f17d6d8c8.d: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/debug/deps/libdoqlab_measure-5f9ec80f17d6d8c8.rlib: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

/root/repo/target/debug/deps/libdoqlab_measure-5f9ec80f17d6d8c8.rmeta: crates/measure/src/lib.rs crates/measure/src/discovery.rs crates/measure/src/engine.rs crates/measure/src/report.rs crates/measure/src/single_query.rs crates/measure/src/stats.rs crates/measure/src/vantage.rs crates/measure/src/webperf.rs

crates/measure/src/lib.rs:
crates/measure/src/discovery.rs:
crates/measure/src/engine.rs:
crates/measure/src/report.rs:
crates/measure/src/single_query.rs:
crates/measure/src/stats.rs:
crates/measure/src/vantage.rs:
crates/measure/src/webperf.rs:
