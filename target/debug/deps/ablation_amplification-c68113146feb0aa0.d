/root/repo/target/debug/deps/ablation_amplification-c68113146feb0aa0.d: crates/bench/src/bin/ablation_amplification.rs Cargo.toml

/root/repo/target/debug/deps/libablation_amplification-c68113146feb0aa0.rmeta: crates/bench/src/bin/ablation_amplification.rs Cargo.toml

crates/bench/src/bin/ablation_amplification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
