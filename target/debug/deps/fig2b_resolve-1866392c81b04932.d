/root/repo/target/debug/deps/fig2b_resolve-1866392c81b04932.d: crates/bench/src/bin/fig2b_resolve.rs Cargo.toml

/root/repo/target/debug/deps/libfig2b_resolve-1866392c81b04932.rmeta: crates/bench/src/bin/fig2b_resolve.rs Cargo.toml

crates/bench/src/bin/fig2b_resolve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
