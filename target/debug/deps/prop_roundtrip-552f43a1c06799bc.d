/root/repo/target/debug/deps/prop_roundtrip-552f43a1c06799bc.d: crates/dnswire/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-552f43a1c06799bc: crates/dnswire/tests/prop_roundtrip.rs

crates/dnswire/tests/prop_roundtrip.rs:
