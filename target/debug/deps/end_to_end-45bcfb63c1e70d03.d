/root/repo/target/debug/deps/end_to_end-45bcfb63c1e70d03.d: crates/dox/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-45bcfb63c1e70d03.rmeta: crates/dox/tests/end_to_end.rs Cargo.toml

crates/dox/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
