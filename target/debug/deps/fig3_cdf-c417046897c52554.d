/root/repo/target/debug/deps/fig3_cdf-c417046897c52554.d: crates/bench/src/bin/fig3_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_cdf-c417046897c52554.rmeta: crates/bench/src/bin/fig3_cdf.rs Cargo.toml

crates/bench/src/bin/fig3_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
