/root/repo/target/debug/deps/doqlab_dnswire-7c8a033471699c4c.d: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_dnswire-7c8a033471699c4c.rmeta: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs Cargo.toml

crates/dnswire/src/lib.rs:
crates/dnswire/src/edns.rs:
crates/dnswire/src/framing.rs:
crates/dnswire/src/message.rs:
crates/dnswire/src/name.rs:
crates/dnswire/src/record.rs:
crates/dnswire/src/types.rs:
crates/dnswire/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
