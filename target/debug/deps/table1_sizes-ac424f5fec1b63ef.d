/root/repo/target/debug/deps/table1_sizes-ac424f5fec1b63ef.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-ac424f5fec1b63ef: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
