/root/repo/target/debug/deps/prop_transport-07fd9a30a587b25b.d: crates/netstack/tests/prop_transport.rs Cargo.toml

/root/repo/target/debug/deps/libprop_transport-07fd9a30a587b25b.rmeta: crates/netstack/tests/prop_transport.rs Cargo.toml

crates/netstack/tests/prop_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
