/root/repo/target/debug/deps/fig4_doq_vs-73b4c47cb719f126.d: crates/bench/src/bin/fig4_doq_vs.rs

/root/repo/target/debug/deps/fig4_doq_vs-73b4c47cb719f126: crates/bench/src/bin/fig4_doq_vs.rs

crates/bench/src/bin/fig4_doq_vs.rs:
