/root/repo/target/debug/deps/engine-7a179f785139c195.d: crates/measure/tests/engine.rs

/root/repo/target/debug/deps/engine-7a179f785139c195: crates/measure/tests/engine.rs

crates/measure/tests/engine.rs:
