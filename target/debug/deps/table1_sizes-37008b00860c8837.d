/root/repo/target/debug/deps/table1_sizes-37008b00860c8837.d: crates/bench/src/bin/table1_sizes.rs

/root/repo/target/debug/deps/table1_sizes-37008b00860c8837: crates/bench/src/bin/table1_sizes.rs

crates/bench/src/bin/table1_sizes.rs:
