/root/repo/target/debug/deps/table1_sizes-9327302ddc4bb2dd.d: crates/bench/src/bin/table1_sizes.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_sizes-9327302ddc4bb2dd.rmeta: crates/bench/src/bin/table1_sizes.rs Cargo.toml

crates/bench/src/bin/table1_sizes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
