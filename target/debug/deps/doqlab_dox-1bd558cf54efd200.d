/root/repo/target/debug/deps/doqlab_dox-1bd558cf54efd200.d: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab_dox-1bd558cf54efd200.rmeta: crates/dox/src/lib.rs crates/dox/src/alpn.rs crates/dox/src/client.rs crates/dox/src/doh.rs crates/dox/src/doh3.rs crates/dox/src/doq.rs crates/dox/src/dot.rs crates/dox/src/host.rs crates/dox/src/server.rs crates/dox/src/tcp.rs crates/dox/src/udp.rs Cargo.toml

crates/dox/src/lib.rs:
crates/dox/src/alpn.rs:
crates/dox/src/client.rs:
crates/dox/src/doh.rs:
crates/dox/src/doh3.rs:
crates/dox/src/doq.rs:
crates/dox/src/dot.rs:
crates/dox/src/host.rs:
crates/dox/src/server.rs:
crates/dox/src/tcp.rs:
crates/dox/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
