/root/repo/target/debug/deps/fig4_doq_vs-ee6f51bfff437a0a.d: crates/bench/src/bin/fig4_doq_vs.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_doq_vs-ee6f51bfff437a0a.rmeta: crates/bench/src/bin/fig4_doq_vs.rs Cargo.toml

crates/bench/src/bin/fig4_doq_vs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
