/root/repo/target/debug/deps/fig1_discovery-915bdb94aa032cac.d: crates/bench/src/bin/fig1_discovery.rs

/root/repo/target/debug/deps/fig1_discovery-915bdb94aa032cac: crates/bench/src/bin/fig1_discovery.rs

crates/bench/src/bin/fig1_discovery.rs:
