/root/repo/target/debug/deps/protocol_stacks-872cb3ccfe87e873.d: crates/bench/benches/protocol_stacks.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_stacks-872cb3ccfe87e873.rmeta: crates/bench/benches/protocol_stacks.rs Cargo.toml

crates/bench/benches/protocol_stacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
