/root/repo/target/debug/deps/doqlab-46539fd8d1f4ccc9.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdoqlab-46539fd8d1f4ccc9.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
