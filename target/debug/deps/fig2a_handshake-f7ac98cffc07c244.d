/root/repo/target/debug/deps/fig2a_handshake-f7ac98cffc07c244.d: crates/bench/src/bin/fig2a_handshake.rs

/root/repo/target/debug/deps/fig2a_handshake-f7ac98cffc07c244: crates/bench/src/bin/fig2a_handshake.rs

crates/bench/src/bin/fig2a_handshake.rs:
