/root/repo/target/debug/deps/ddr-e051db12e5ea6995.d: crates/resolver/tests/ddr.rs Cargo.toml

/root/repo/target/debug/deps/libddr-e051db12e5ea6995.rmeta: crates/resolver/tests/ddr.rs Cargo.toml

crates/resolver/tests/ddr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
