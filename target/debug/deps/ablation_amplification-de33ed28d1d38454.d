/root/repo/target/debug/deps/ablation_amplification-de33ed28d1d38454.d: crates/bench/src/bin/ablation_amplification.rs

/root/repo/target/debug/deps/ablation_amplification-de33ed28d1d38454: crates/bench/src/bin/ablation_amplification.rs

crates/bench/src/bin/ablation_amplification.rs:
