/root/repo/target/debug/deps/doqlab-c4706efd90a0350a.d: src/main.rs

/root/repo/target/debug/deps/doqlab-c4706efd90a0350a: src/main.rs

src/main.rs:
