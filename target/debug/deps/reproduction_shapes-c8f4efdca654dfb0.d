/root/repo/target/debug/deps/reproduction_shapes-c8f4efdca654dfb0.d: tests/reproduction_shapes.rs

/root/repo/target/debug/deps/reproduction_shapes-c8f4efdca654dfb0: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
