/root/repo/target/debug/deps/reproduction_shapes-06fcf177d0498deb.d: tests/reproduction_shapes.rs

/root/repo/target/debug/deps/reproduction_shapes-06fcf177d0498deb: tests/reproduction_shapes.rs

tests/reproduction_shapes.rs:
