/root/repo/target/debug/deps/sweep_loss-2ffbf938b3723609.d: crates/bench/src/bin/sweep_loss.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_loss-2ffbf938b3723609.rmeta: crates/bench/src/bin/sweep_loss.rs Cargo.toml

crates/bench/src/bin/sweep_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
