/root/repo/target/debug/deps/reproduction_shapes-9e6c5b506b011e76.d: tests/reproduction_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libreproduction_shapes-9e6c5b506b011e76.rmeta: tests/reproduction_shapes.rs Cargo.toml

tests/reproduction_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
