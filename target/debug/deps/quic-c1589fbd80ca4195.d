/root/repo/target/debug/deps/quic-c1589fbd80ca4195.d: crates/netstack/tests/quic.rs

/root/repo/target/debug/deps/quic-c1589fbd80ca4195: crates/netstack/tests/quic.rs

crates/netstack/tests/quic.rs:
