/root/repo/target/debug/deps/doqlab_core-0b2469dd690d09a9.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/doqlab_core-0b2469dd690d09a9: crates/core/src/lib.rs

crates/core/src/lib.rs:
