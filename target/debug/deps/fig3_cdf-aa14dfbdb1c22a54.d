/root/repo/target/debug/deps/fig3_cdf-aa14dfbdb1c22a54.d: crates/bench/src/bin/fig3_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_cdf-aa14dfbdb1c22a54.rmeta: crates/bench/src/bin/fig3_cdf.rs Cargo.toml

crates/bench/src/bin/fig3_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
