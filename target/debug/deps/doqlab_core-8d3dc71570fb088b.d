/root/repo/target/debug/deps/doqlab_core-8d3dc71570fb088b.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_core-8d3dc71570fb088b.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libdoqlab_core-8d3dc71570fb088b.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
