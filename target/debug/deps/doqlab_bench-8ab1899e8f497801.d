/root/repo/target/debug/deps/doqlab_bench-8ab1899e8f497801.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/doqlab_bench-8ab1899e8f497801: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
