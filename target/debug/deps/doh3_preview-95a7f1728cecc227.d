/root/repo/target/debug/deps/doh3_preview-95a7f1728cecc227.d: crates/bench/src/bin/doh3_preview.rs

/root/repo/target/debug/deps/doh3_preview-95a7f1728cecc227: crates/bench/src/bin/doh3_preview.rs

crates/bench/src/bin/doh3_preview.rs:
