/root/repo/target/debug/deps/sweep_loss-7601a6d76b1d17e7.d: crates/bench/src/bin/sweep_loss.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_loss-7601a6d76b1d17e7.rmeta: crates/bench/src/bin/sweep_loss.rs Cargo.toml

crates/bench/src/bin/sweep_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
