/root/repo/target/debug/deps/ablation_dot_bug-f9db161e56181ef4.d: crates/bench/src/bin/ablation_dot_bug.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dot_bug-f9db161e56181ef4.rmeta: crates/bench/src/bin/ablation_dot_bug.rs Cargo.toml

crates/bench/src/bin/ablation_dot_bug.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
