/root/repo/target/debug/deps/doh3_preview-8341d8721378a3b0.d: crates/bench/src/bin/doh3_preview.rs

/root/repo/target/debug/deps/doh3_preview-8341d8721378a3b0: crates/bench/src/bin/doh3_preview.rs

crates/bench/src/bin/doh3_preview.rs:
