/root/repo/target/debug/deps/headline_claims-54f4e7bef5b7f75c.d: crates/bench/src/bin/headline_claims.rs Cargo.toml

/root/repo/target/debug/deps/libheadline_claims-54f4e7bef5b7f75c.rmeta: crates/bench/src/bin/headline_claims.rs Cargo.toml

crates/bench/src/bin/headline_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
