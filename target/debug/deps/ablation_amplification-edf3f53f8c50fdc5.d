/root/repo/target/debug/deps/ablation_amplification-edf3f53f8c50fdc5.d: crates/bench/src/bin/ablation_amplification.rs Cargo.toml

/root/repo/target/debug/deps/libablation_amplification-edf3f53f8c50fdc5.rmeta: crates/bench/src/bin/ablation_amplification.rs Cargo.toml

crates/bench/src/bin/ablation_amplification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
