/root/repo/target/debug/deps/serde-e03a673e3507e2fc.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e03a673e3507e2fc.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
