/root/repo/target/debug/deps/proxy-41780294276aa479.d: crates/webperf/tests/proxy.rs

/root/repo/target/debug/deps/proxy-41780294276aa479: crates/webperf/tests/proxy.rs

crates/webperf/tests/proxy.rs:
