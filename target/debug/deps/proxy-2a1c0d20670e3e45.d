/root/repo/target/debug/deps/proxy-2a1c0d20670e3e45.d: crates/webperf/tests/proxy.rs

/root/repo/target/debug/deps/proxy-2a1c0d20670e3e45: crates/webperf/tests/proxy.rs

crates/webperf/tests/proxy.rs:
