/root/repo/target/debug/deps/fig2b_resolve-09fcdbe363cc06c7.d: crates/bench/src/bin/fig2b_resolve.rs

/root/repo/target/debug/deps/fig2b_resolve-09fcdbe363cc06c7: crates/bench/src/bin/fig2b_resolve.rs

crates/bench/src/bin/fig2b_resolve.rs:
