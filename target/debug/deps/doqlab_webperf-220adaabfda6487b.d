/root/repo/target/debug/deps/doqlab_webperf-220adaabfda6487b.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/doqlab_webperf-220adaabfda6487b: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
