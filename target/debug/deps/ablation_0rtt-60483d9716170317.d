/root/repo/target/debug/deps/ablation_0rtt-60483d9716170317.d: crates/bench/src/bin/ablation_0rtt.rs

/root/repo/target/debug/deps/ablation_0rtt-60483d9716170317: crates/bench/src/bin/ablation_0rtt.rs

crates/bench/src/bin/ablation_0rtt.rs:
