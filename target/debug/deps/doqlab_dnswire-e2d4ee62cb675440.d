/root/repo/target/debug/deps/doqlab_dnswire-e2d4ee62cb675440.d: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

/root/repo/target/debug/deps/doqlab_dnswire-e2d4ee62cb675440: crates/dnswire/src/lib.rs crates/dnswire/src/edns.rs crates/dnswire/src/framing.rs crates/dnswire/src/message.rs crates/dnswire/src/name.rs crates/dnswire/src/record.rs crates/dnswire/src/types.rs crates/dnswire/src/wire.rs

crates/dnswire/src/lib.rs:
crates/dnswire/src/edns.rs:
crates/dnswire/src/framing.rs:
crates/dnswire/src/message.rs:
crates/dnswire/src/name.rs:
crates/dnswire/src/record.rs:
crates/dnswire/src/types.rs:
crates/dnswire/src/wire.rs:
