/root/repo/target/debug/deps/overview_versions-9a15367633a67237.d: crates/bench/src/bin/overview_versions.rs Cargo.toml

/root/repo/target/debug/deps/liboverview_versions-9a15367633a67237.rmeta: crates/bench/src/bin/overview_versions.rs Cargo.toml

crates/bench/src/bin/overview_versions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
