/root/repo/target/debug/deps/serde_json-a1fc793bd30c7fed.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-a1fc793bd30c7fed.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
