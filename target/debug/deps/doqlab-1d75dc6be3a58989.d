/root/repo/target/debug/deps/doqlab-1d75dc6be3a58989.d: src/main.rs

/root/repo/target/debug/deps/doqlab-1d75dc6be3a58989: src/main.rs

src/main.rs:
