/root/repo/target/debug/deps/ddr-85f0ae030b7f9cdf.d: crates/resolver/tests/ddr.rs

/root/repo/target/debug/deps/ddr-85f0ae030b7f9cdf: crates/resolver/tests/ddr.rs

crates/resolver/tests/ddr.rs:
