/root/repo/target/debug/deps/serde-33df6daa84663c6e.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-33df6daa84663c6e.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-33df6daa84663c6e.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
