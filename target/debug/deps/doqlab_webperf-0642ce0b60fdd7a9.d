/root/repo/target/debug/deps/doqlab_webperf-0642ce0b60fdd7a9.d: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/libdoqlab_webperf-0642ce0b60fdd7a9.rlib: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

/root/repo/target/debug/deps/libdoqlab_webperf-0642ce0b60fdd7a9.rmeta: crates/webperf/src/lib.rs crates/webperf/src/browser.rs crates/webperf/src/http.rs crates/webperf/src/loadsim.rs crates/webperf/src/origin.rs crates/webperf/src/page.rs crates/webperf/src/proxy.rs

crates/webperf/src/lib.rs:
crates/webperf/src/browser.rs:
crates/webperf/src/http.rs:
crates/webperf/src/loadsim.rs:
crates/webperf/src/origin.rs:
crates/webperf/src/page.rs:
crates/webperf/src/proxy.rs:
