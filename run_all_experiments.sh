#!/bin/sh
# Regenerate every paper artefact into results/ (see EXPERIMENTS.md).
# Usage: ./run_all_experiments.sh [quick|medium|paper]
set -e
SCALE="${1:-medium}"
SEED=2022
mkdir -p results
cargo build --release -p doqlab-bench

run() {
    echo "=== $1 ($SCALE) ==="
    ./target/release/"$1" --scale "$SCALE" --seed "$SEED" ${2:+$2}
}

{
    run fig1_discovery
    run overview_versions
    run table1_sizes
    run fig2a_handshake
    run fig2b_resolve
} | tee "results/single_query_$SCALE.txt"

{
    run fig3_cdf
    run fig4_doq_vs
    run headline_claims
} | tee "results/webperf_$SCALE.txt"

{
    run ablation_amplification
    run ablation_dot_bug "--resolvers 48"
    run ablation_0rtt
    run ablation_tcp_keepalive "--resolvers 48"
    run doh3_preview
    run sweep_loss "--resolvers 24"

} | tee "results/ablations_$SCALE.txt"
