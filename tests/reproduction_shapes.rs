//! Workspace-level integration tests: run reduced campaigns end to end
//! and assert the paper's qualitative results — the orderings,
//! crossovers and rough factors the reproduction must preserve.

use doqlab_core::dox::DnsTransport;
use doqlab_core::measure::report::{fig4, overview, relative_to_baseline, table1};
use doqlab_core::measure::{median, Scale};
use doqlab_core::Study;

fn small_study(seed: u64) -> Study {
    Study {
        scale: Scale {
            resolvers: Some(6),
            repetitions: 1,
            rounds: 1,
            loads_per_round: 1,
            pages: Some(10),
            clients: Some(2_000),
            threads: 4,
        },
        ..Study::quick(seed)
    }
}

#[test]
fn single_query_shapes_hold() {
    let study = Study {
        scale: Scale {
            resolvers: Some(8),
            pages: Some(1),
            ..small_study(5).scale
        },
        ..small_study(5)
    };
    let samples = study.run_single_query();
    assert_eq!(samples.len(), 6 * 8 * 5);
    let ok = samples.iter().filter(|s| !s.failed).count();
    assert!(
        ok * 100 >= samples.len() * 95,
        "too many failures: {ok}/{}",
        samples.len()
    );

    // Fig. 2a: DoT ~= DoH ~= 2x DoQ ~= 2x DoTCP handshakes.
    let hs = |t: DnsTransport| {
        median(
            &samples
                .iter()
                .filter(|s| s.transport == t)
                .filter_map(|s| s.handshake_ms)
                .collect::<Vec<_>>(),
        )
        .unwrap()
    };
    assert!(hs(DnsTransport::DoT) / hs(DnsTransport::DoQ) > 1.7);
    assert!(hs(DnsTransport::DoH) / hs(DnsTransport::DoQ) > 1.7);
    assert!((hs(DnsTransport::DoQ) / hs(DnsTransport::DoTcp) - 1.0).abs() < 0.15);

    // Table 1 ordering.
    let t1 = table1(&samples);
    let total = |n: &str| t1.sizes[n][0];
    assert!(total("DoUDP") < total("DoTCP"));
    assert!(total("DoTCP") < total("DoT"));
    assert!(total("DoT") < total("DoH"));
    assert!(total("DoH") < total("DoQ"));
    // DoQ's handshake roughly doubles DoH's (1200-byte padded flights).
    let hs_bytes = |n: &str| t1.sizes[n][1] + t1.sizes[n][2];
    assert!(hs_bytes("DoQ") > 2.0 * hs_bytes("DoH"));

    // §3 overview: every measured encrypted query resumes; none 0-RTT.
    let o = overview(&samples);
    assert!(o.resumption_share > 0.99);
    assert_eq!(o.zero_rtt_share, 0.0);
    assert!(o.tls13_share > 0.9);
}

#[test]
fn web_performance_shapes_hold() {
    let study = small_study(7);
    let samples = study.run_webperf();
    let ok = samples.iter().filter(|s| !s.failed).count();
    assert!(
        ok * 100 >= samples.len() * 90,
        "too many failures: {ok}/{}",
        samples.len()
    );

    // Fig. 3: relative PLT vs DoUDP — DoQ best among encrypted, DoT
    // worst (the dnsproxy bug).
    let diffs = relative_to_baseline(&samples, DnsTransport::DoUdp);
    let med = |p: &str| median(&diffs.plt[p]).unwrap();
    assert!(
        med("DoQ") < med("DoH"),
        "DoQ {} vs DoH {}",
        med("DoQ"),
        med("DoH")
    );
    assert!(
        med("DoH") <= med("DoT") + 1.0,
        "DoH {} vs DoT {}",
        med("DoH"),
        med("DoT")
    );
    assert!(med("DoQ") > 0.0, "encryption costs something");
    assert!(
        med("DoQ") < 20.0,
        "DoQ within ~20% of DoUDP, was {}",
        med("DoQ")
    );

    // Fig. 4: amortization — the DoUDP advantage shrinks from the
    // simplest to the most complex page.
    let cells = fig4(&samples);
    let page_med = |name: &str| {
        median(
            &cells
                .iter()
                .filter(|c| c.page == name)
                .map(|c| -c.doudp_rel_median_pct)
                .collect::<Vec<_>>(),
        )
        .unwrap()
    };
    let simple = page_med("wikipedia.org");
    let complex = page_med("youtube.com");
    assert!(
        simple > complex,
        "encryption cost must amortize: wikipedia {simple:.1}% vs youtube {complex:.1}%"
    );
    // DoQ mostly improves on DoH.
    let wins = median(
        &cells
            .iter()
            .map(|c| c.doq_faster_than_doh)
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(wins > 0.6, "DoQ should beat DoH in most pairs, won {wins}");
}

#[test]
fn campaigns_are_deterministic() {
    let a = small_study(11).run_single_query();
    let b = small_study(11).run_single_query();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.handshake_ms, y.handshake_ms);
        assert_eq!(x.resolve_ms, y.resolve_ms);
        assert_eq!(x.bytes, y.bytes);
    }
    let c = small_study(12).run_single_query();
    let diff = a
        .iter()
        .zip(&c)
        .filter(|(x, y)| x.resolve_ms != y.resolve_ms)
        .count();
    assert!(diff > 0, "different seeds must differ");
}

#[test]
fn zero_rtt_study_closes_the_gap_to_doudp() {
    let base = Study {
        scale: Scale {
            resolvers: Some(6),
            pages: Some(1),
            ..small_study(3).scale
        },
        ..small_study(3)
    };
    let mut upgraded = base.clone();
    upgraded.zero_rtt_resolvers = true;
    let total = |samples: &[doqlab_core::measure::SingleQuerySample], t: DnsTransport| {
        median(
            &samples
                .iter()
                .filter(|s| s.transport == t && !s.failed)
                .filter_map(|s| Some(s.handshake_ms.unwrap_or(0.0) + s.resolve_ms?))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    };
    let s_base = base.run_single_query();
    let s_up = upgraded.run_single_query();
    let udp = total(&s_base, DnsTransport::DoUdp);
    let doq_now = total(&s_base, DnsTransport::DoQ);
    let doq_0rtt = total(&s_up, DnsTransport::DoQ);
    assert!(doq_now > udp * 1.7, "today DoQ ~2 RTT: {doq_now} vs {udp}");
    assert!(
        doq_0rtt < udp * 1.25,
        "0-RTT brings DoQ to ~DoUDP: {doq_0rtt} vs {udp}"
    );
}
