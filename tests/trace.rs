//! End-to-end qlog trace validation: `Study::trace_single_query` (the
//! body of `doqlab trace single-query`) must emit a JSON-SEQ stream
//! that round-trips through the parser with the layer coverage the
//! telemetry subsystem promises — at least one event each from the
//! QUIC, TLS and congestion-control instrumentation.

use doqlab_core::telemetry::qlog::{parse_seq, Json};
use doqlab_core::Study;

#[test]
fn trace_single_query_round_trips_with_layer_coverage() {
    let run = Study::quick(2022).trace_single_query();
    assert_eq!(run.traces.len(), 5, "one trace per transport");
    let seq = run.to_json_seq();

    let records = parse_seq(&seq).expect("trace output is valid JSON-SEQ");
    let header = &records[0];
    assert_eq!(
        header.get("qlog_version").and_then(Json::as_str),
        Some("0.3")
    );
    assert_eq!(
        header.get("qlog_format").and_then(Json::as_str),
        Some("JSON-SEQ")
    );

    let events = &records[1..];
    assert!(!events.is_empty(), "trace emitted no events");
    for event in events {
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("time").and_then(Json::as_f64).is_some());
        assert!(event.get("group_id").and_then(Json::as_str).is_some());
        assert!(event.get("data").is_some());
    }
    let layer_count = |layer: &str| {
        events
            .iter()
            .filter(|e| e.get("layer").and_then(Json::as_str) == Some(layer))
            .count()
    };
    assert!(layer_count("quic") >= 1, "no QUIC events in the trace");
    assert!(layer_count("tls") >= 1, "no TLS events in the trace");
    assert!(
        layer_count("cc") >= 1,
        "no congestion-control events in the trace"
    );

    // The DoQ connection must carry QUIC packet events under its own
    // group_id, so traces stay attributable per transport.
    let doq_events = events
        .iter()
        .filter(|e| {
            e.get("group_id")
                .and_then(Json::as_str)
                .is_some_and(|g| g.starts_with("DoQ:"))
        })
        .count();
    assert!(
        doq_events >= 1,
        "no events attributed to the DoQ connection"
    );
}
